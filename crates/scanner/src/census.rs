//! The §4.1 domain-census methodology, zdns-style.
//!
//! For every registered domain: query `DNSKEY` (through the configured
//! recursive resolver, as the paper did through Cloudflare); if present,
//! query `NSEC3PARAM` and `NS`; then query a random nonexistent subdomain
//! to elicit NSEC3 records, and apply the paper's consistency filters
//! (exactly one NSEC3PARAM; all NSEC3 records agree with each other and
//! with the NSEC3PARAM).

use std::net::IpAddr;

use dns_resolver::resolver::{ResolveOutcome, Resolver};
use dns_wire::name::Name;
use dns_wire::rdata::RData;
use dns_wire::rrtype::{Rcode, RrType};
use dns_zone::nsec3hash::Nsec3Params;
use netsim::Network;

use crate::ratelimit::RateLimiter;
use crate::retry::ScanSession;

/// Everything the census learned about one domain.
#[derive(Clone, Debug)]
pub struct DomainObservation {
    /// The domain.
    pub domain: Name,
    /// DNSKEY records were returned.
    pub dnssec_enabled: bool,
    /// All NSEC3PARAM records seen at the apex.
    pub nsec3params: Vec<Nsec3Params>,
    /// NSEC3 parameter sets observed on the negative probe.
    pub nsec3_observed: Vec<Nsec3Params>,
    /// Any NSEC3 record had the opt-out flag.
    pub opt_out: bool,
    /// NSEC records seen instead (NSEC-signed domain).
    pub uses_nsec: bool,
    /// NS target names.
    pub ns_targets: Vec<Name>,
    /// At least one probe phase was lost to timeouts (detected as a
    /// SERVFAIL whose resolution spent upstream timeouts): the
    /// observation is incomplete and must not be classified.
    pub probe_loss: bool,
    /// Final classification.
    pub class: DomainClass,
}

/// The census classification (§4.1's filtering rules).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DomainClass {
    /// No DNSKEY records: not DNSSEC-enabled.
    NotDnssec,
    /// DNSSEC-enabled, NSEC denial.
    DnssecNsec,
    /// DNSSEC-enabled, no denial records observed (lame, unreachable, …).
    DnssecUnknownDenial,
    /// More than one NSEC3PARAM record — excluded from NSEC3 analysis.
    MultipleNsec3Params,
    /// NSEC3/NSEC3PARAM inconsistency (violates RFC 5155) — excluded.
    InconsistentNsec3,
    /// NSEC3-enabled with these parameters: the analysis population.
    Nsec3Enabled(Nsec3Params),
    /// Probe traffic was lost before the domain could be observed: the
    /// domain is reported as *lost coverage*, never misclassified as
    /// NotDnssec (graceful degradation).
    Unprobed,
}

impl DomainClass {
    /// Is the domain in the paper's "NSEC3-enabled" analysis set?
    pub fn nsec3_enabled(&self) -> Option<&Nsec3Params> {
        match self {
            DomainClass::Nsec3Enabled(p) => Some(p),
            _ => None,
        }
    }
}

/// The census scanner.
pub struct Census<'a> {
    /// The network.
    pub net: &'a Network,
    /// The recursive resolver queries go through.
    pub resolver: &'a Resolver,
    /// Source address label for the probe names (cache busting).
    pub scan_id: String,
    /// Paces queries like the paper's zdns configuration.
    pub rate: RateLimiter,
    /// When set, every probe phase is loss-accounted in this session's
    /// [`crate::retry::ProbeStats`].
    pub session: Option<&'a ScanSession>,
}

impl<'a> Census<'a> {
    /// Build a census using `resolver` (already registered or used
    /// directly) as the vantage point.
    pub fn new(net: &'a Network, resolver: &'a Resolver, scan_id: impl Into<String>) -> Self {
        Census {
            net,
            resolver,
            scan_id: scan_id.into(),
            rate: RateLimiter::new(14_700),
            session: None,
        }
    }

    /// The same census, loss-accounted through `session`.
    pub fn with_session(mut self, session: &'a ScanSession) -> Self {
        self.session = Some(session);
        self
    }

    /// Did this resolution lose its probe, rather than observe a genuine
    /// answer? A SERVFAIL that spent upstream timeouts is probe loss; a
    /// SERVFAIL resolved entirely from answered traffic (validation
    /// failure, policy SERVFAIL) is a real observation. Fault-free
    /// networks never spend timeouts, so this is always `false` there.
    fn phase_lost(out: &ResolveOutcome) -> bool {
        out.rcode == Rcode::ServFail && out.cost.timeouts > 0
    }

    /// Account one phase's outcome in the session, if any.
    fn note_phase(&self, out: &ResolveOutcome, lost: bool) {
        if let Some(session) = self.session {
            if lost {
                session.note_timed_out(out.cost.retries);
            } else {
                session.note_answered(out.cost.retries);
            }
        }
    }

    /// Run the three-phase §4.1 scan for one domain: drive a
    /// [`CensusProbe`] to completion inline. Event-driven pipelines step
    /// the same machine one phase at a time instead.
    pub fn observe(&self, domain: &Name) -> DomainObservation {
        let mut probe = CensusProbe::new(domain.clone());
        while !probe.step(self) {}
        probe.into_observation()
    }
}

/// Which phase a [`CensusProbe`] runs next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CensusPhase {
    /// Phase 1: DNSKEY bootstrap.
    Dnskey,
    /// Phase 2a: NSEC3PARAM at the apex.
    Params,
    /// Phase 2b: NS targets.
    Ns,
    /// Phase 3: random-subdomain negative probe.
    Negative,
    /// All phases ran (or an early exit fired); the observation is final.
    Done,
}

/// The §4.1 scan for one domain as an explicit per-flow state machine:
/// each [`CensusProbe::step`] paces and runs exactly one probe phase.
/// [`Census::observe`] drives it inline; the event-driven census parks
/// the flow between phases instead, interleaving many domains. Both
/// orders of phases-within-a-domain are identical by construction — this
/// machine is the only implementation.
#[derive(Debug)]
pub struct CensusProbe {
    obs: DomainObservation,
    phase: CensusPhase,
}

impl CensusProbe {
    /// A fresh three-phase probe for `domain`.
    pub fn new(domain: Name) -> Self {
        CensusProbe {
            obs: DomainObservation {
                domain,
                dnssec_enabled: false,
                nsec3params: Vec::new(),
                nsec3_observed: Vec::new(),
                opt_out: false,
                uses_nsec: false,
                ns_targets: Vec::new(),
                probe_loss: false,
                class: DomainClass::NotDnssec,
            },
            phase: CensusPhase::Dnskey,
        }
    }

    /// All phases complete?
    pub fn done(&self) -> bool {
        self.phase == CensusPhase::Done
    }

    /// Run one phase through `census` (its pacer, resolver, and session).
    /// Returns `true` once the observation is final.
    pub fn step(&mut self, census: &Census<'_>) -> bool {
        let obs = &mut self.obs;
        match self.phase {
            CensusPhase::Dnskey => {
                census.rate.pace(census.net);
                let dnskey = census
                    .resolver
                    .resolve(census.net, &obs.domain, RrType::DNSKEY);
                if Census::phase_lost(&dnskey) {
                    // The bootstrap phase never completed: without it we
                    // cannot even tell DNSSEC from plain DNS, so the
                    // domain is lost coverage, not "NotDnssec". The
                    // remaining phases are given up on (accounted as
                    // skipped, not silently dropped).
                    census.note_phase(&dnskey, true);
                    if let Some(session) = census.session {
                        for _ in 0..3 {
                            session.note_skipped();
                        }
                    }
                    obs.probe_loss = true;
                    obs.class = DomainClass::Unprobed;
                    self.phase = CensusPhase::Done;
                } else {
                    census.note_phase(&dnskey, false);
                    obs.dnssec_enabled =
                        dnskey.answers.iter().any(|r| r.rrtype() == RrType::DNSKEY);
                    // A plain-DNS domain needs no further phases and
                    // keeps the default NotDnssec class.
                    self.phase = if obs.dnssec_enabled {
                        CensusPhase::Params
                    } else {
                        CensusPhase::Done
                    };
                }
            }
            CensusPhase::Params => {
                census.rate.pace(census.net);
                let params = census
                    .resolver
                    .resolve(census.net, &obs.domain, RrType::NSEC3PARAM);
                let params_lost = Census::phase_lost(&params);
                census.note_phase(&params, params_lost);
                obs.probe_loss |= params_lost;
                for rec in &params.answers {
                    if let Some(p) = Nsec3Params::from_rdata(&rec.rdata) {
                        obs.nsec3params.push(p);
                    }
                }
                self.phase = CensusPhase::Ns;
            }
            CensusPhase::Ns => {
                census.rate.pace(census.net);
                let ns = census.resolver.resolve(census.net, &obs.domain, RrType::NS);
                let ns_lost = Census::phase_lost(&ns);
                census.note_phase(&ns, ns_lost);
                obs.probe_loss |= ns_lost;
                for rec in &ns.answers {
                    if let RData::Ns(target) = &rec.rdata {
                        obs.ns_targets.push(target.clone());
                    }
                }
                self.phase = CensusPhase::Negative;
            }
            CensusPhase::Negative => {
                census.rate.pace(census.net);
                let probe = Name::parse(&format!("zz-{}-probe", census.scan_id))
                    .and_then(|p| p.concat(&obs.domain))
                    .unwrap_or_else(|_| obs.domain.clone());
                let neg = census.resolver.resolve(census.net, &probe, RrType::A);
                let neg_lost = Census::phase_lost(&neg);
                census.note_phase(&neg, neg_lost);
                obs.probe_loss |= neg_lost;
                let denial_records = neg.authorities.iter().chain(neg.answers.iter());
                for rec in denial_records {
                    match &rec.rdata {
                        RData::Nsec3 { .. } => {
                            if let Some(p) = Nsec3Params::from_rdata(&rec.rdata) {
                                obs.nsec3_observed.push(p);
                            }
                            if rec.rdata.nsec3_opt_out() == Some(true) {
                                obs.opt_out = true;
                            }
                        }
                        RData::Nsec { .. } => obs.uses_nsec = true,
                        _ => {}
                    }
                }
                let _ = neg.rcode == Rcode::NxDomain; // either NXDOMAIN or wildcard NOERROR is fine
                obs.class = classify(obs);
                self.phase = CensusPhase::Done;
            }
            CensusPhase::Done => {}
        }
        self.done()
    }

    /// The finished (or abandoned) observation.
    pub fn into_observation(self) -> DomainObservation {
        self.obs
    }
}

/// Apply the paper's filters to raw observations.
pub fn classify(obs: &DomainObservation) -> DomainClass {
    if obs.probe_loss {
        // Incomplete observations are never classified: a domain whose
        // probes were lost would otherwise masquerade as NotDnssec or
        // DnssecUnknownDenial and silently skew every share.
        return DomainClass::Unprobed;
    }
    if !obs.dnssec_enabled {
        return DomainClass::NotDnssec;
    }
    if obs.uses_nsec && obs.nsec3params.is_empty() && obs.nsec3_observed.is_empty() {
        return DomainClass::DnssecNsec;
    }
    if obs.nsec3params.is_empty() && obs.nsec3_observed.is_empty() {
        return DomainClass::DnssecUnknownDenial;
    }
    if obs.nsec3params.len() > 1 {
        return DomainClass::MultipleNsec3Params;
    }
    // All NSEC3 records must agree among themselves…
    let mut iter = obs.nsec3_observed.iter();
    let first = iter.next();
    if let Some(first) = first {
        if iter.any(|p| p != first) {
            return DomainClass::InconsistentNsec3;
        }
        // …and with the NSEC3PARAM (when we saw one).
        if let Some(param) = obs.nsec3params.first() {
            if param != first {
                return DomainClass::InconsistentNsec3;
            }
        }
        return DomainClass::Nsec3Enabled(first.clone());
    }
    // Only an NSEC3PARAM, no NSEC3 observed (e.g. wildcard swallowed the
    // probe): accept the advertised parameters, as the paper's pipeline
    // does when the one-to-one mapping holds.
    DomainClass::Nsec3Enabled(obs.nsec3params[0].clone())
}

/// Extract the "name server operator" for aggregation: the registered
/// domain of an NS target, approximated as the last two labels (we carry
/// no public-suffix list; the synthetic populations use two-label
/// operator domains so the approximation is exact there).
pub fn ns_operator(target: &Name) -> Option<Name> {
    let labels: Vec<&[u8]> = target.labels().collect();
    if labels.len() < 2 {
        return None;
    }
    Name::from_labels(labels[labels.len() - 2..].iter().map(|l| l.to_vec()))
        .ok()
        .map(|n| n.to_lowercase())
}

/// Which operators serve a domain *exclusively* (all NS targets under one
/// registered domain)? Returns that operator, else `None`.
pub fn exclusive_operator(ns_targets: &[Name]) -> Option<Name> {
    let mut ops: Vec<Name> = ns_targets.iter().filter_map(ns_operator).collect();
    ops.sort();
    ops.dedup();
    match ops.len() {
        1 => Some(ops.remove(0)),
        _ => None,
    }
}

/// Convenience: the scanner address bundled with its resolver, mirroring
/// the paper's zdns + Cloudflare setup.
pub fn census_vantage(resolver: &Resolver) -> IpAddr {
    resolver.config.addr
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::name::name;

    fn obs(
        dnssec: bool,
        params: Vec<Nsec3Params>,
        observed: Vec<Nsec3Params>,
        nsec: bool,
    ) -> DomainObservation {
        DomainObservation {
            domain: name("example.com."),
            dnssec_enabled: dnssec,
            nsec3params: params,
            nsec3_observed: observed,
            opt_out: false,
            uses_nsec: nsec,
            ns_targets: vec![],
            probe_loss: false,
            class: DomainClass::NotDnssec,
        }
    }

    #[test]
    fn classification_rules() {
        let p0 = Nsec3Params::rfc9276();
        let p1 = Nsec3Params::new(1, vec![1]);
        assert_eq!(
            classify(&obs(false, vec![], vec![], false)),
            DomainClass::NotDnssec
        );
        assert_eq!(
            classify(&obs(true, vec![], vec![], true)),
            DomainClass::DnssecNsec
        );
        assert_eq!(
            classify(&obs(true, vec![], vec![], false)),
            DomainClass::DnssecUnknownDenial
        );
        assert_eq!(
            classify(&obs(true, vec![p0.clone(), p1.clone()], vec![], false)),
            DomainClass::MultipleNsec3Params
        );
        assert_eq!(
            classify(&obs(
                true,
                vec![p0.clone()],
                vec![p0.clone(), p1.clone()],
                false
            )),
            DomainClass::InconsistentNsec3
        );
        assert_eq!(
            classify(&obs(true, vec![p0.clone()], vec![p1.clone()], false)),
            DomainClass::InconsistentNsec3
        );
        assert_eq!(
            classify(&obs(true, vec![p1.clone()], vec![p1.clone()], false)),
            DomainClass::Nsec3Enabled(p1.clone())
        );
        assert_eq!(
            classify(&obs(true, vec![p0.clone()], vec![], false)),
            DomainClass::Nsec3Enabled(p0)
        );
    }

    #[test]
    fn probe_loss_is_never_misclassified() {
        // Even an observation that "looks" NotDnssec or NSEC3-enabled is
        // reported as lost coverage once any phase went unanswered.
        let mut lossy = obs(false, vec![], vec![], false);
        lossy.probe_loss = true;
        assert_eq!(classify(&lossy), DomainClass::Unprobed);
        let mut lossy = obs(true, vec![Nsec3Params::rfc9276()], vec![], false);
        lossy.probe_loss = true;
        assert_eq!(classify(&lossy), DomainClass::Unprobed);
        assert!(classify(&lossy).nsec3_enabled().is_none());
    }

    #[test]
    fn operator_extraction() {
        assert_eq!(
            ns_operator(&name("ns1.dns.squarespace-dns.com.")).unwrap(),
            name("squarespace-dns.com.")
        );
        assert_eq!(ns_operator(&name("com.")), None);
        assert_eq!(
            exclusive_operator(&[name("ns1.one.com."), name("NS2.ONE.COM."),]).unwrap(),
            name("one.com.")
        );
        assert_eq!(
            exclusive_operator(&[name("ns1.one.com."), name("ns1.two.net.")]),
            None
        );
        assert_eq!(exclusive_operator(&[]), None);
    }
}
