//! The measurement toolkit: a zdns-style bulk census pipeline (§4.1), the
//! resolver-classification prober (§4.2), RIPE-Atlas-style closed-resolver
//! probing, and zone-enumeration tooling (AXFR, NSEC walking, NSEC3 hash
//! harvesting + dictionary attacks).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atlas;
pub mod census;
pub mod prober;
pub mod ratelimit;
pub mod retry;
pub mod walk;

pub use atlas::{classify_via_probe, classify_via_probe_with, AtlasProbe, ClosedResolver};
pub use census::{Census, DomainClass, DomainObservation};
pub use prober::{derive_limits, ProbePlan, Prober, ResolverClassification};
pub use ratelimit::RateLimiter;
pub use retry::{BreakerConfig, ProbeStats, ScanSession};
pub use walk::{axfr, dictionary_attack, nsec3_collect, nsec_walk, Nsec3Harvest};

#[cfg(test)]
mod e2e {
    use super::*;
    use dns_resolver::lab::LabBuilder;
    use dns_resolver::{Resolver, ResolverConfig, Rfc9276Policy};
    use dns_wire::name::name;
    use dns_zone::nsec3hash::Nsec3Params;
    use dns_zone::signer::Denial;
    use std::rc::Rc;

    const NOW: u32 = 1_710_000_000;

    #[test]
    fn census_classifies_live_zones() {
        let mut lab = LabBuilder::new(NOW)
            .simple_zone(&name("com."), Denial::nsec3_rfc9276())
            .simple_zone(
                &name("compliant.com."),
                Denial::Nsec3 {
                    params: Nsec3Params::rfc9276(),
                    opt_out: false,
                },
            )
            .simple_zone(
                &name("dirty.com."),
                Denial::Nsec3 {
                    params: Nsec3Params::new(10, vec![0xab; 8]),
                    opt_out: true,
                },
            )
            .simple_zone(&name("nsec.com."), Denial::Nsec)
            .build();
        let raddr = lab.alloc.v4();
        let mut cfg = ResolverConfig::validating(raddr, lab.root_hints.clone(), lab.anchor.clone());
        cfg.now = lab.now;
        cfg.policy = Rfc9276Policy::unlimited();
        let resolver = Resolver::new(cfg);
        let census = Census::new(&lab.net, &resolver, "t1");

        let compliant = census.observe(&name("compliant.com."));
        assert!(compliant.dnssec_enabled);
        let p = compliant.class.nsec3_enabled().expect("NSEC3-enabled");
        assert_eq!(p.iterations, 0);
        assert!(p.salt.is_empty());
        assert!(!compliant.opt_out);

        let dirty = census.observe(&name("dirty.com."));
        let p = dirty.class.nsec3_enabled().expect("NSEC3-enabled");
        assert_eq!(p.iterations, 10);
        assert_eq!(p.salt.len(), 8);
        assert!(dirty.opt_out);
        assert!(!dirty.ns_targets.is_empty());

        let nsec = census.observe(&name("nsec.com."));
        assert_eq!(nsec.class, DomainClass::DnssecNsec);

        // A nonexistent domain: not DNSSEC-enabled (no DNSKEY answer).
        let nothing = census.observe(&name("missing.com."));
        assert_eq!(nothing.class, DomainClass::NotDnssec);
    }

    #[test]
    fn prober_classifies_a_bind_like_validator() {
        // Testbed: valid, expired, and three it-N zones.
        let mut b = LabBuilder::new(NOW)
            .simple_zone(&name("com."), Denial::nsec3_rfc9276())
            .simple_zone(&name("tb.com."), Denial::nsec3_rfc9276())
            .simple_zone(&name("valid.tb.com."), Denial::nsec3_rfc9276());
        let mut expired_spec = dns_resolver::ZoneSpec::new(
            dns_resolver::lab::simple_zone_contents(&name("expired.tb.com.")),
            Denial::nsec3_rfc9276(),
        );
        expired_spec.expired = true;
        b = b.zone(expired_spec);
        let its: Vec<(u16, &str)> = vec![
            (100, "it-100.tb.com."),
            (150, "it-150.tb.com."),
            (151, "it-151.tb.com."),
            (200, "it-200.tb.com."),
        ];
        for (n, apex) in &its {
            b = b.simple_zone(
                &name(apex),
                Denial::Nsec3 {
                    params: Nsec3Params::new(*n, vec![]),
                    opt_out: false,
                },
            );
        }
        let mut lab = b.build();

        let raddr = lab.alloc.v4();
        let mut cfg = ResolverConfig::validating(raddr, lab.root_hints.clone(), lab.anchor.clone());
        cfg.now = lab.now;
        cfg.policy = Rfc9276Policy::insecure_above(150); // BIND-2021-like
        lab.net.register(raddr, Rc::new(Resolver::new(cfg)));

        let plan = ProbePlan {
            valid: name("www.valid.tb.com."),
            expired: name("www.expired.tb.com."),
            it_zones: its.iter().map(|(n, a)| (*n, name(a))).collect(),
            it_2501_expired: None,
        };
        let probe_src = lab.alloc.v4();
        let prober = Prober::new(&lab.net, probe_src, &plan);
        let c = prober.classify(raddr);
        assert!(!c.unreachable, "resolver answered");
        assert!(!c.partial, "full per-N coverage on a clean network");
        assert!(c.is_validator);
        assert_eq!(c.insecure_limit, Some(150));
        assert_eq!(c.servfail_start, None);
        assert!(c.ede27_on_limit, "EDE 27 expected on limited responses");
        assert!(!c.flaky);
    }

    #[test]
    fn prober_detects_non_validator() {
        let mut b = LabBuilder::new(NOW)
            .simple_zone(&name("com."), Denial::nsec3_rfc9276())
            .simple_zone(&name("valid.tb.com."), Denial::nsec3_rfc9276())
            .simple_zone(&name("tb.com."), Denial::nsec3_rfc9276());
        let mut expired_spec = dns_resolver::ZoneSpec::new(
            dns_resolver::lab::simple_zone_contents(&name("expired.tb.com.")),
            Denial::nsec3_rfc9276(),
        );
        expired_spec.expired = true;
        b = b.zone(expired_spec);
        let mut lab = b.build();
        let raddr = lab.alloc.v4();
        let mut cfg = ResolverConfig::stub(raddr, lab.root_hints.clone());
        cfg.now = lab.now;
        lab.net.register(raddr, Rc::new(Resolver::new(cfg)));
        let plan = ProbePlan {
            valid: name("www.valid.tb.com."),
            expired: name("www.expired.tb.com."),
            it_zones: vec![],
            it_2501_expired: None,
        };
        let probe_src = lab.alloc.v4();
        let c = Prober::new(&lab.net, probe_src, &plan).classify(raddr);
        assert!(!c.unreachable);
        assert!(
            !c.is_validator,
            "stub resolves expired zones fine and sets no AD"
        );
    }

    #[test]
    fn requery_unmasks_flaky_resolvers_and_confirms_stable_ones() {
        use dns_resolver::FlakyResolver;
        let mut b = LabBuilder::new(NOW)
            .simple_zone(&name("com."), Denial::nsec3_rfc9276())
            .simple_zone(&name("tb.com."), Denial::nsec3_rfc9276())
            .simple_zone(&name("valid.tb.com."), Denial::nsec3_rfc9276());
        let mut expired_spec = dns_resolver::ZoneSpec::new(
            dns_resolver::lab::simple_zone_contents(&name("expired.tb.com.")),
            Denial::nsec3_rfc9276(),
        );
        expired_spec.expired = true;
        b = b.zone(expired_spec);
        for n in [120u16, 160] {
            b = b.simple_zone(
                &name(&format!("it-{n}.tb.com.")),
                Denial::Nsec3 {
                    params: Nsec3Params::new(n, vec![]),
                    opt_out: false,
                },
            );
        }
        let mut lab = b.build();
        let plan = ProbePlan {
            valid: name("www.valid.tb.com."),
            expired: name("www.expired.tb.com."),
            it_zones: vec![(120, name("it-120.tb.com.")), (160, name("it-160.tb.com."))],
            it_2501_expired: None,
        };
        // A stable BIND-like resolver.
        let stable_addr = lab.alloc.v4();
        let mut cfg =
            ResolverConfig::validating(stable_addr, lab.root_hints.clone(), lab.anchor.clone());
        cfg.now = lab.now;
        cfg.policy = Rfc9276Policy::insecure_above(150);
        lab.net
            .register(stable_addr, Rc::new(Resolver::new(cfg.clone())));
        // A flaky resolver whose thresholds wobble per query.
        let flaky_addr = lab.alloc.v4();
        let mut fcfg = cfg.clone();
        fcfg.addr = flaky_addr;
        lab.net.register(
            flaky_addr,
            Rc::new(FlakyResolver::with_gap(Resolver::new(fcfg), 100, 150)),
        );
        let src = lab.alloc.v4();
        let prober = Prober::new(&lab.net, src, &plan);
        let stable = prober.classify_with_requery(stable_addr, 3);
        assert!(
            !stable.flaky,
            "stable resolver stays stable over re-queries"
        );
        assert_eq!(stable.insecure_limit, Some(120));
        let flaky = prober.classify_with_requery(flaky_addr, 3);
        assert!(flaky.flaky, "re-querying exposes the wobble");
    }

    #[test]
    fn closed_resolver_probed_only_via_atlas() {
        let mut b = LabBuilder::new(NOW)
            .simple_zone(&name("com."), Denial::nsec3_rfc9276())
            .simple_zone(&name("valid.tb.com."), Denial::nsec3_rfc9276())
            .simple_zone(&name("tb.com."), Denial::nsec3_rfc9276());
        let mut expired_spec = dns_resolver::ZoneSpec::new(
            dns_resolver::lab::simple_zone_contents(&name("expired.tb.com.")),
            Denial::nsec3_rfc9276(),
        );
        expired_spec.expired = true;
        b = b.zone(expired_spec);
        let mut lab = b.build();
        let raddr = lab.alloc.v4();
        let probe_addr = lab.alloc.v4();
        let outside = lab.alloc.v4();
        let mut cfg = ResolverConfig::validating(raddr, lab.root_hints.clone(), lab.anchor.clone());
        cfg.now = lab.now;
        let closed = ClosedResolver::new(Rc::new(Resolver::new(cfg)), [probe_addr]);
        lab.net.register(raddr, Rc::new(closed));
        let plan = ProbePlan {
            valid: name("www.valid.tb.com."),
            expired: name("www.expired.tb.com."),
            it_zones: vec![],
            it_2501_expired: None,
        };
        // Open-Internet prober: the closed resolver looks unreachable —
        // and stays in the denominator as such rather than vanishing.
        let from_outside = Prober::new(&lab.net, outside, &plan).classify(raddr);
        assert!(from_outside.unreachable);
        assert!(!from_outside.is_validator);
        // Atlas probe: full classification, EDE suppressed.
        let probe = AtlasProbe {
            addr: probe_addr,
            local_resolver: raddr,
        };
        let c = classify_via_probe(&lab.net, &probe, &plan);
        assert!(!c.unreachable);
        assert!(c.is_validator);
    }
}
