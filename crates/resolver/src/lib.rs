//! A validating recursive DNS resolver with configurable RFC 9276
//! behaviour, vendor profiles, and CVE-2023-50868 cost accounting.
//!
//! * [`resolver`] — iterative resolution + DNSSEC chain validation.
//! * [`validator`] — RRset signature checks and NSEC/NSEC3 proof
//!   verification (the CVE cost center).
//! * [`policy`] — the RFC 9276 items 6–12 knobs.
//! * [`profiles`] — BIND/Unbound/Knot/PowerDNS/Google/Cloudflare/Quad9/
//!   OpenDNS/Technitium behaviour presets.
//! * [`broken`] — forwarders, query copiers, flaky resolvers.
//! * [`cost`] — compression-count cost model.
//! * [`lab`] — a signed root→TLD→child hierarchy on the simulated network,
//!   shared by tests, the testbed, and benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggressive;
pub mod broken;
pub mod cache;
pub mod cost;
pub mod delegation;
pub mod lab;
pub mod policy;
pub mod profiles;
pub mod resolver;
pub mod validator;

pub use aggressive::AggressiveCache;
pub use broken::{FlakyResolver, Forwarder, ObservedResponse, QueryCopier};
pub use cache::TtlCache;
pub use cost::{CostMeter, CostSnapshot};
pub use delegation::{Delegation, DelegationCache};
pub use lab::{Lab, LabBuilder, ZoneSpec};
pub use policy::{LimitAction, Rfc9276Policy, WorkBudget};
pub use profiles::VendorProfile;
pub use resolver::{
    Recursion, RecursionStep, ResolveOutcome, Resolver, ResolverConfig, TrustAnchor,
};
pub use validator::{ValidationError, ZoneKeys};

#[cfg(test)]
mod e2e {
    use super::*;
    use dns_wire::edns::EdeCode;
    use dns_wire::name::{name, Name};
    use dns_wire::rrtype::{Rcode, RrType};
    use dns_zone::nsec3hash::Nsec3Params;
    use dns_zone::signer::Denial;
    use dns_zone::{faults, Zone};
    use std::rc::Rc;

    const NOW: u32 = 1_710_000_000;

    fn lab_with_params(params_list: &[(&str, Nsec3Params)]) -> Lab {
        let mut b = LabBuilder::new(NOW).simple_zone(&name("com."), Denial::nsec3_rfc9276());
        for (apex, params) in params_list {
            b = b.simple_zone(
                &name(apex),
                Denial::Nsec3 {
                    params: params.clone(),
                    opt_out: false,
                },
            );
        }
        b.build()
    }

    fn resolver_for(lab: &mut Lab, policy: Rfc9276Policy) -> Resolver {
        let addr = lab.alloc.v4();
        let mut cfg = ResolverConfig::validating(addr, lab.root_hints.clone(), lab.anchor.clone());
        cfg.now = lab.now;
        cfg.policy = policy;
        Resolver::new(cfg)
    }

    #[test]
    fn positive_answer_is_secure() {
        let mut lab = lab_with_params(&[("example.com.", Nsec3Params::rfc9276())]);
        let r = resolver_for(&mut lab, Rfc9276Policy::unlimited());
        let out = r.resolve(&lab.net, &name("www.example.com."), RrType::A);
        assert_eq!(out.rcode, Rcode::NoError);
        assert!(
            out.authenticated,
            "chain root→com→example.com must validate"
        );
        assert_eq!(out.answers.len(), 1);
    }

    #[test]
    fn nxdomain_is_secure_with_compliant_params() {
        let mut lab = lab_with_params(&[("example.com.", Nsec3Params::rfc9276())]);
        let r = resolver_for(&mut lab, Rfc9276Policy::unlimited());
        let out = r.resolve(&lab.net, &name("nope.example.com."), RrType::A);
        assert_eq!(out.rcode, Rcode::NxDomain);
        assert!(out.authenticated);
        assert!(out.cost.nsec3_hashes >= 3);
    }

    #[test]
    fn high_iterations_with_unlimited_policy_still_validates() {
        let mut lab = lab_with_params(&[("it-500.example.com.", Nsec3Params::new(500, vec![]))]);
        let r = resolver_for(&mut lab, Rfc9276Policy::unlimited());
        let out = r.resolve(&lab.net, &name("probe.it-500.example.com."), RrType::A);
        assert_eq!(out.rcode, Rcode::NxDomain);
        assert!(out.authenticated);
        // The cost blow-up: each hash chain is 501 compressions.
        assert!(out.cost.sha1_compressions > 1000, "{:?}", out.cost);
    }

    #[test]
    fn item6_insecure_above_threshold() {
        let mut lab = lab_with_params(&[("it-200.example.com.", Nsec3Params::new(200, vec![]))]);
        let r = resolver_for(&mut lab, Rfc9276Policy::insecure_above(150));
        let out = r.resolve(&lab.net, &name("probe.it-200.example.com."), RrType::A);
        assert_eq!(out.rcode, Rcode::NxDomain);
        assert!(!out.authenticated, "above the limit: NXDOMAIN without AD");
        assert_eq!(
            out.ede.as_ref().map(|e| e.0),
            Some(EdeCode::UNSUPPORTED_NSEC3_ITERATIONS)
        );
    }

    #[test]
    fn item6_below_threshold_still_secure() {
        let mut lab = lab_with_params(&[("it-100.example.com.", Nsec3Params::new(100, vec![]))]);
        let r = resolver_for(&mut lab, Rfc9276Policy::insecure_above(150));
        let out = r.resolve(&lab.net, &name("probe.it-100.example.com."), RrType::A);
        assert_eq!(out.rcode, Rcode::NxDomain);
        assert!(out.authenticated);
    }

    #[test]
    fn item8_servfail_above_threshold() {
        let mut lab = lab_with_params(&[("it-200.example.com.", Nsec3Params::new(200, vec![]))]);
        let r = resolver_for(&mut lab, Rfc9276Policy::servfail_above(150));
        let out = r.resolve(&lab.net, &name("probe.it-200.example.com."), RrType::A);
        assert_eq!(out.rcode, Rcode::ServFail);
        assert_eq!(
            out.ede.as_ref().map(|e| e.0),
            Some(EdeCode::UNSUPPORTED_NSEC3_ITERATIONS)
        );
    }

    #[test]
    fn expired_signatures_servfail() {
        let mut b = LabBuilder::new(NOW).simple_zone(&name("com."), Denial::nsec3_rfc9276());
        let mut spec = ZoneSpec::new(
            lab::simple_zone_contents(&name("expired.example.com.")),
            Denial::nsec3_rfc9276(),
        );
        spec.expired = true;
        b = b
            .simple_zone(&name("example.com."), Denial::nsec3_rfc9276())
            .zone(spec);
        let mut lab = b.build();
        let r = resolver_for(&mut lab, Rfc9276Policy::unlimited());
        let out = r.resolve(&lab.net, &name("www.expired.example.com."), RrType::A);
        assert_eq!(out.rcode, Rcode::ServFail);
    }

    #[test]
    fn item7_compliant_resolver_catches_expired_nsec3_despite_limit() {
        // The it-2501-expired scenario: iterations over every limit AND
        // expired RRSIGs over the NSEC3 records. A compliant resolver
        // (verify_nsec3_rrsig = true) must SERVFAIL, not downgrade.
        let mut b = LabBuilder::new(NOW).simple_zone(&name("com."), Denial::nsec3_rfc9276());
        let mut spec = ZoneSpec::new(
            lab::simple_zone_contents(&name("it-2501-expired.example.com.")),
            Denial::Nsec3 {
                params: Nsec3Params::new(2501, vec![]),
                opt_out: false,
            },
        );
        spec.post_sign = Some(Box::new(|z| {
            faults::expire_rrsigs(z, Some(RrType::NSEC3), NOW);
        }));
        b = b
            .simple_zone(&name("example.com."), Denial::nsec3_rfc9276())
            .zone(spec);
        let mut lab = b.build();

        let compliant = resolver_for(&mut lab, Rfc9276Policy::insecure_above(150));
        let out = compliant.resolve(
            &lab.net,
            &name("probe.it-2501-expired.example.com."),
            RrType::A,
        );
        assert_eq!(
            out.rcode,
            Rcode::ServFail,
            "item 7: must verify NSEC3 RRSIG first"
        );

        // The 0.2 % violator skips the check and returns insecure NXDOMAIN.
        let mut violator_policy = Rfc9276Policy::insecure_above(150);
        violator_policy.verify_nsec3_rrsig = false;
        let violator = resolver_for(&mut lab, violator_policy);
        let out = violator.resolve(
            &lab.net,
            &name("probe2.it-2501-expired.example.com."),
            RrType::A,
        );
        assert_eq!(out.rcode, Rcode::NxDomain);
        assert!(!out.authenticated);
    }

    #[test]
    fn insecure_delegation_resolves_without_ad() {
        let mut b = LabBuilder::new(NOW).simple_zone(&name("com."), Denial::nsec3_rfc9276());
        let mut spec = ZoneSpec::new(
            lab::simple_zone_contents(&name("unsigned.example.com.")),
            Denial::nsec3_rfc9276(),
        );
        spec.unsigned_delegation = true;
        b = b
            .simple_zone(&name("example.com."), Denial::nsec3_rfc9276())
            .zone(spec);
        let mut lab = b.build();
        let r = resolver_for(&mut lab, Rfc9276Policy::unlimited());
        let out = r.resolve(&lab.net, &name("www.unsigned.example.com."), RrType::A);
        assert_eq!(out.rcode, Rcode::NoError);
        assert!(!out.authenticated, "insecure island: no AD");
        assert_eq!(out.answers.len(), 1);
    }

    #[test]
    fn non_validating_resolver_never_authenticates() {
        let mut lab = lab_with_params(&[("example.com.", Nsec3Params::rfc9276())]);
        let addr = lab.alloc.v4();
        let mut cfg = ResolverConfig::stub(addr, lab.root_hints.clone());
        cfg.now = lab.now;
        let r = Resolver::new(cfg);
        let out = r.resolve(&lab.net, &name("www.example.com."), RrType::A);
        assert_eq!(out.rcode, Rcode::NoError);
        assert!(!out.authenticated);
    }

    #[test]
    fn resolver_as_node_sets_ad_and_ra() {
        let mut lab = lab_with_params(&[("example.com.", Nsec3Params::rfc9276())]);
        let raddr = lab.alloc.v4();
        let client = lab.alloc.v4();
        let mut cfg = ResolverConfig::validating(raddr, lab.root_hints.clone(), lab.anchor.clone());
        cfg.now = lab.now;
        lab.net.register(raddr, Rc::new(Resolver::new(cfg)));
        let q = dns_wire::Message::query(5, name("nope.example.com."), RrType::A).encode();
        let resp = lab.net.send_query(client, raddr, &q);
        let obs = ObservedResponse::from_wire(resp.payload().unwrap()).unwrap();
        assert_eq!(obs.rcode, Rcode::NxDomain);
        assert!(obs.ad);
        assert!(obs.ra);
    }

    #[test]
    fn query_copier_servfails_any_iterations_and_copies_ra() {
        let mut lab = lab_with_params(&[("it-1.example.com.", Nsec3Params::new(1, vec![]))]);
        let raddr = lab.alloc.v4();
        let client = lab.alloc.v4();
        let mut cfg = ResolverConfig::validating(raddr, lab.root_hints.clone(), lab.anchor.clone());
        cfg.now = lab.now;
        lab.net
            .register(raddr, Rc::new(QueryCopier::new(Resolver::new(cfg))));
        let q = dns_wire::Message::query(5, name("probe.it-1.example.com."), RrType::A).encode();
        let resp = lab.net.send_query(client, raddr, &q);
        let obs = ObservedResponse::from_wire(resp.payload().unwrap()).unwrap();
        assert_eq!(obs.rcode, Rcode::ServFail);
        assert!(!obs.ra, "copier mirrors the query's (unset) RA bit");
    }

    #[test]
    fn forwarder_relays_and_strips_ede() {
        let mut lab = lab_with_params(&[("it-200.example.com.", Nsec3Params::new(200, vec![]))]);
        let upstream_addr = lab.alloc.v4();
        let fwd_addr = lab.alloc.v4();
        let client = lab.alloc.v4();
        let mut cfg =
            ResolverConfig::validating(upstream_addr, lab.root_hints.clone(), lab.anchor.clone());
        cfg.now = lab.now;
        cfg.policy = Rfc9276Policy::servfail_above(150);
        lab.net.register(upstream_addr, Rc::new(Resolver::new(cfg)));
        lab.net.register(
            fwd_addr,
            Rc::new(Forwarder {
                addr: fwd_addr,
                upstream: upstream_addr,
                strip_ede: true,
            }),
        );
        let q = dns_wire::Message::query(5, name("x.it-200.example.com."), RrType::A).encode();
        let resp = lab.net.send_query(client, fwd_addr, &q);
        let obs = ObservedResponse::from_wire(resp.payload().unwrap()).unwrap();
        assert_eq!(obs.rcode, Rcode::ServFail);
        assert_eq!(obs.ede, None, "forwarder stripped the EDE");
        // The authoritative logs must show the upstream's address, not the
        // client's — the paper's forwarder-identification trick.
        let log = lab.auths[&name("it-200.example.com.")].query_log();
        assert!(log.iter().all(|e| e.src == upstream_addr));
    }

    #[test]
    fn tampered_answer_is_bogus() {
        let mut b = LabBuilder::new(NOW).simple_zone(&name("com."), Denial::nsec3_rfc9276());
        let mut spec = ZoneSpec::new(
            lab::simple_zone_contents(&name("tampered.example.com.")),
            Denial::nsec3_rfc9276(),
        );
        spec.post_sign = Some(Box::new(|z| {
            faults::corrupt_rrsigs_covering(z, RrType::A);
        }));
        b = b
            .simple_zone(&name("example.com."), Denial::nsec3_rfc9276())
            .zone(spec);
        let mut lab = b.build();
        let r = resolver_for(&mut lab, Rfc9276Policy::unlimited());
        let out = r.resolve(&lab.net, &name("www.tampered.example.com."), RrType::A);
        assert_eq!(out.rcode, Rcode::ServFail);
    }

    #[test]
    fn check_limits_first_saves_work() {
        // Ablation: with limits checked first the resolver spends no hash
        // work on an over-limit zone; with signature-first ordering it pays
        // for signature checks (but still skips hashing).
        let mut lab = lab_with_params(&[("it-500.example.com.", Nsec3Params::new(500, vec![]))]);
        let fast = resolver_for(&mut lab, Rfc9276Policy::servfail_above(150));
        let out = fast.resolve(&lab.net, &name("p1.it-500.example.com."), RrType::A);
        assert_eq!(out.rcode, Rcode::ServFail);
        assert_eq!(
            out.cost.nsec3_hashes, 0,
            "limit check shortcuts all hashing"
        );
    }

    #[test]
    fn signature_first_ordering_pays_for_verification() {
        // Ablation: with check_limits_first = false the resolver verifies
        // the NSEC3 RRSIGs even for an over-limit zone (and still refuses),
        // so it performs signature work the default ordering skips.
        let mut lab = lab_with_params(&[("it-500.example.com.", Nsec3Params::new(500, vec![]))]);
        let mut policy = Rfc9276Policy::servfail_above(150);
        policy.emit_ede = false;
        let mut lazy = resolver_for(&mut lab, policy.clone());
        lazy.config.check_limits_first = true;
        let lazy_out = lazy.resolve(&lab.net, &name("p1.it-500.example.com."), RrType::A);
        let mut eager = resolver_for(&mut lab, policy);
        eager.config.check_limits_first = false;
        let eager_out = eager.resolve(&lab.net, &name("p2.it-500.example.com."), RrType::A);
        assert_eq!(lazy_out.rcode, Rcode::ServFail);
        assert_eq!(eager_out.rcode, Rcode::ServFail);
        assert!(
            eager_out.cost.signatures_verified > lazy_out.cost.signatures_verified,
            "sig-first {} vs limit-first {}",
            eager_out.cost.signatures_verified,
            lazy_out.cost.signatures_verified
        );
        // Neither arm hashes: the limit still gates hashing.
        assert_eq!(eager_out.cost.nsec3_hashes, 0);
    }

    #[test]
    fn caching_answers_and_keys() {
        let mut lab = lab_with_params(&[("example.com.", Nsec3Params::rfc9276())]);
        let r = resolver_for(&mut lab, Rfc9276Policy::unlimited());
        let q = name("www.example.com.");
        let first = r.resolve(&lab.net, &q, RrType::A);
        assert!(first.cost.messages_sent > 0);
        // Same question again: answered from cache, zero network cost.
        let second = r.resolve(&lab.net, &q, RrType::A);
        assert_eq!(second.rcode, first.rcode);
        assert_eq!(second.answers, first.answers);
        assert_eq!(second.cost.messages_sent, 0);
        assert!(r.cache_hits() >= 1);
        // A different name under the same zone reuses validated keys:
        // fewer messages than the cold resolution.
        let third = r.resolve(&lab.net, &name("nope.example.com."), RrType::A);
        assert!(third.cost.messages_sent < first.cost.messages_sent);
        // After the TTL (300 s for this zone) the answer expires.
        lab.net.advance(400 * 1_000_000);
        let fourth = r.resolve(&lab.net, &q, RrType::A);
        assert!(
            fourth.cost.messages_sent > 0,
            "cache entry expired with TTL"
        );
    }

    #[test]
    fn oversized_nsec3_answers_fall_back_to_tcp() {
        // A 255-byte salt makes the three-NSEC3 NXDOMAIN proof overflow
        // the 1232-byte UDP budget: the server truncates, the resolver
        // retries over TCP framing, and validation still succeeds.
        let mut lab =
            lab_with_params(&[("fat.example.com.", Nsec3Params::new(3, vec![0xEE; 255]))]);
        let r = resolver_for(&mut lab, Rfc9276Policy::unlimited());
        let out = r.resolve(&lab.net, &name("nope.fat.example.com."), RrType::A);
        assert_eq!(out.rcode, Rcode::NxDomain);
        assert!(out.authenticated, "TCP fallback preserved the proof");
        // The denial actually came back oversized.
        let proof_bytes: usize = out
            .authorities
            .iter()
            .map(|rec| rec.rdata.canonical_bytes().len())
            .sum();
        // RDATA alone nears the UDP budget; with owner names, RRSIGs and
        // the SOA the encoded message exceeds 1232 (hence the TC retry
        // asserted below).
        assert!(
            proof_bytes > 1000,
            "proof is genuinely oversized: {proof_bytes}"
        );
        // The TC exchange cost an extra message on the final hop.
        let slim = lab_with_params(&[("slim.example.com.", Nsec3Params::new(3, vec![]))]);
        let mut lab2 = slim;
        let r2 = resolver_for(&mut lab2, Rfc9276Policy::unlimited());
        let slim_out = r2.resolve(&lab2.net, &name("nope.slim.example.com."), RrType::A);
        assert!(
            out.cost.messages_sent > slim_out.cost.messages_sent,
            "{} vs {}",
            out.cost.messages_sent,
            slim_out.cost.messages_sent
        );
    }

    #[test]
    fn qname_minimization_hides_the_full_name_from_upper_zones() {
        let mut lab = lab_with_params(&[("example.com.", Nsec3Params::rfc9276())]);
        let addr = lab.alloc.v4();
        let mut cfg = ResolverConfig::validating(addr, lab.root_hints.clone(), lab.anchor.clone());
        cfg.now = lab.now;
        cfg.qname_minimization = true;
        cfg.cache_size = 0; // every query visible in the logs
        let r = Resolver::new(cfg);
        let out = r.resolve(&lab.net, &name("www.example.com."), RrType::A);
        assert_eq!(out.rcode, Rcode::NoError);
        assert!(out.authenticated, "minimization must not break validation");
        // Privacy property: the root and com servers never saw the full
        // name (DNSKEY fetches target the zone apexes and are fine).
        let full = name("www.example.com.");
        for apex in [Name::root(), name("com.")] {
            let log = lab.auths[&apex].query_log();
            assert!(!log.is_empty());
            assert!(
                log.iter().all(|e| e.qname != full),
                "{apex} saw the full qname: {:?}",
                log.iter().map(|e| e.qname.to_string()).collect::<Vec<_>>()
            );
        }
        // The authoritative zone itself does see it, of course.
        let leaf_log = lab.auths[&name("example.com.")].query_log();
        assert!(leaf_log.iter().any(|e| e.qname == full));
    }

    #[test]
    fn qname_minimization_descends_through_existing_names() {
        // x.www.example.com: the minimized probe for www.example.com gets
        // NODATA (the name exists), the resolver reveals one more label,
        // and the final answer is a validated NXDOMAIN.
        let mut lab = lab_with_params(&[("example.com.", Nsec3Params::rfc9276())]);
        let addr = lab.alloc.v4();
        let mut cfg = ResolverConfig::validating(addr, lab.root_hints.clone(), lab.anchor.clone());
        cfg.now = lab.now;
        cfg.qname_minimization = true;
        let r = Resolver::new(cfg);
        let out = r.resolve(&lab.net, &name("x.www.example.com."), RrType::A);
        assert_eq!(out.rcode, Rcode::NxDomain);
        assert!(out.authenticated);
        // And an intermediate NXDOMAIN short-circuits: nothing under the
        // partial name exists either.
        let out = r.resolve(&lab.net, &name("a.b.nope.example.com."), RrType::A);
        assert_eq!(out.rcode, Rcode::NxDomain);
        assert!(out.authenticated);
    }

    #[test]
    fn dns0x20_rejects_case_mangling_servers() {
        // A middlebox that rewrites the echoed question to lowercase
        // defeats the 0x20 check; the resolver must treat its answers as
        // spoofed (and, with no other server, fail).
        struct CaseMangler(Rc<dyn netsim::Node>);
        impl netsim::Node for CaseMangler {
            fn handle(
                &self,
                net: &netsim::Network,
                src: std::net::IpAddr,
                payload: &[u8],
                reply: &mut Vec<u8>,
            ) -> Option<()> {
                self.0.handle(net, src, payload, reply)?;
                let mut msg = dns_wire::Message::decode(reply).ok()?;
                for q in &mut msg.questions {
                    q.qname = q.qname.to_lowercase();
                }
                reply.clear();
                msg.encode_append(reply);
                Some(())
            }
        }
        let mut lab = lab_with_params(&[("example.com.", Nsec3Params::rfc9276())]);
        // Re-register the example.com. server behind the mangler, on both
        // of its addresses (the resolver otherwise falls back to the
        // clean dual-stack twin — which is itself a nice property).
        let (v4, v6) = lab.servers[&name("example.com.")];
        let auth = lab.auths[&name("example.com.")].clone();
        let mangler: Rc<dyn netsim::Node> = Rc::new(CaseMangler(auth));
        lab.net.unregister(v4);
        lab.net.unregister(v6);
        lab.net.register(v4, mangler.clone());
        lab.net.register(v6, mangler);
        let strict = resolver_for(&mut lab, Rfc9276Policy::unlimited());
        assert!(strict.config.case_randomization, "0x20 on by default");
        let out = strict.resolve(&lab.net, &name("www.example.com."), RrType::A);
        assert_eq!(out.rcode, Rcode::ServFail, "mangled echo treated as spoof");
        // With 0x20 disabled the same path works (mixed case is legal DNS).
        let mut cfg =
            ResolverConfig::validating(lab.alloc.v4(), lab.root_hints.clone(), lab.anchor.clone());
        cfg.now = lab.now;
        cfg.case_randomization = false;
        let lax = Resolver::new(cfg);
        let out = lax.resolve(&lab.net, &name("www.example.com."), RrType::A);
        assert_eq!(out.rcode, Rcode::NoError);
        assert!(out.authenticated);
    }

    #[test]
    fn aggressive_nsec3_synthesizes_second_nxdomain() {
        let mut lab = lab_with_params(&[("example.com.", Nsec3Params::rfc9276())]);
        let addr = lab.alloc.v4();
        let mut cfg = ResolverConfig::validating(addr, lab.root_hints.clone(), lab.anchor.clone());
        cfg.now = lab.now;
        cfg.aggressive_nsec3 = true;
        let r = Resolver::new(cfg);
        // First miss: full recursion, chain cached.
        let first = r.resolve(&lab.net, &name("miss-one.example.com."), RrType::A);
        assert_eq!(first.rcode, Rcode::NxDomain);
        assert!(first.cost.messages_sent > 0);
        // Second (different) miss: synthesized without any network I/O,
        // but the hash work remains — RFC 8198 §5.4's caveat.
        let second = r.resolve(&lab.net, &name("miss-two.example.com."), RrType::A);
        assert_eq!(second.rcode, Rcode::NxDomain);
        assert!(second.authenticated);
        assert_eq!(second.cost.messages_sent, 0, "no upstream queries");
        assert!(second.cost.nsec3_hashes >= 3, "synthesis still hashes");
        assert_eq!(r.synthesized_nxdomains(), 1);
        // Existing names are never wrongly denied.
        let pos = r.resolve(&lab.net, &name("www.example.com."), RrType::A);
        assert_eq!(pos.rcode, Rcode::NoError);
        assert_eq!(pos.answers.len(), 1);
    }

    #[test]
    fn cache_disabled_with_zero_capacity() {
        let mut lab = lab_with_params(&[("example.com.", Nsec3Params::rfc9276())]);
        let addr = lab.alloc.v4();
        let mut cfg = ResolverConfig::validating(addr, lab.root_hints.clone(), lab.anchor.clone());
        cfg.now = lab.now;
        cfg.cache_size = 0;
        let r = Resolver::new(cfg);
        let q = name("www.example.com.");
        let first = r.resolve(&lab.net, &q, RrType::A);
        let second = r.resolve(&lab.net, &q, RrType::A);
        assert_eq!(second.cost.messages_sent, first.cost.messages_sent);
        assert_eq!(r.cache_hits(), 0);
    }

    #[test]
    fn nsec_zone_validates_too() {
        let mut b = LabBuilder::new(NOW).simple_zone(&name("com."), Denial::nsec3_rfc9276());
        b = b.simple_zone(&name("nsec.example.com."), Denial::Nsec);
        b = b.simple_zone(&name("example.com."), Denial::nsec3_rfc9276());
        let mut lab = b.build();
        let r = resolver_for(&mut lab, Rfc9276Policy::unlimited());
        let pos = r.resolve(&lab.net, &name("www.nsec.example.com."), RrType::A);
        assert_eq!(pos.rcode, Rcode::NoError);
        assert!(pos.authenticated);
        let neg = r.resolve(&lab.net, &name("nope.nsec.example.com."), RrType::A);
        assert_eq!(neg.rcode, Rcode::NxDomain);
        assert!(neg.authenticated);
        assert_eq!(neg.cost.nsec3_hashes, 0, "NSEC denial needs no hashing");
    }

    #[test]
    fn flaky_resolver_varies_between_queries() {
        let mut lab = lab_with_params(&[("it-120.example.com.", Nsec3Params::new(120, vec![]))]);
        let raddr = lab.alloc.v4();
        let client = lab.alloc.v4();
        let mut cfg = ResolverConfig::validating(raddr, lab.root_hints.clone(), lab.anchor.clone());
        cfg.now = lab.now;
        let flaky = FlakyResolver::with_gap(Resolver::new(cfg), 100, 150);
        lab.net.register(raddr, Rc::new(flaky));
        let mut rcodes = std::collections::HashSet::new();
        let mut ads = std::collections::HashSet::new();
        for i in 0..3 {
            let q =
                dns_wire::Message::query(i, name(&format!("p{i}.it-120.example.com.")), RrType::A)
                    .encode();
            let resp = lab.net.send_query(client, raddr, &q);
            let obs = ObservedResponse::from_wire(resp.payload().unwrap()).unwrap();
            rcodes.insert(obs.rcode.to_u16());
            ads.insert(obs.ad);
        }
        assert!(rcodes.len() > 1 || ads.len() > 1, "behaviour should wobble");
    }

    #[test]
    fn wildcard_answer_validates_securely() {
        let mut b = LabBuilder::new(NOW).simple_zone(&name("com."), Denial::nsec3_rfc9276());
        let apex = name("wild.example.com.");
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(
            name("*.wild.example.com."),
            300,
            RData::A("192.0.2.42".parse().unwrap()),
        ))
        .unwrap();
        b = b
            .simple_zone(&name("example.com."), Denial::nsec3_rfc9276())
            .zone(ZoneSpec::new(z, Denial::nsec3_rfc9276()));
        let mut lab = b.build();
        let r = resolver_for(&mut lab, Rfc9276Policy::unlimited());
        let out = r.resolve(&lab.net, &name("anything.wild.example.com."), RrType::A);
        assert_eq!(out.rcode, Rcode::NoError);
        assert!(out.authenticated);
        assert_eq!(out.answers[0].name, name("anything.wild.example.com."));
    }

    use dns_wire::rdata::RData;
    use dns_wire::record::Record;
    use dns_zone::signer::SigningKey;

    /// The genuine trust anchor for a lab zone (the lab derives every
    /// KSK deterministically from the apex).
    fn real_anchor(apex: &Name) -> TrustAnchor {
        let ksk = SigningKey::ksk(apex);
        let RData::Ds {
            key_tag, digest, ..
        } = lab::ds_record(apex, &ksk).rdata
        else {
            unreachable!("ds_record yields DS rdata");
        };
        TrustAnchor {
            zone: apex.clone(),
            key_tag,
            digest,
        }
    }

    #[test]
    fn anchors_match_per_zone_apex_not_first_entry() {
        // Regression: the validator used to consult only the FIRST
        // configured anchor. With the example.com anchor listed before
        // the root anchor, the root DNSKEY fetch must still find the
        // root entry by apex.
        let mut lab = lab_with_params(&[("example.com.", Nsec3Params::rfc9276())]);
        let raddr = lab.alloc.v4();
        let mut cfg = ResolverConfig::validating(raddr, lab.root_hints.clone(), lab.anchor.clone());
        cfg.now = lab.now;
        cfg.trust_anchors = vec![real_anchor(&name("example.com.")), lab.anchor.clone()];
        let r = Resolver::new(cfg);
        let out = r.resolve(&lab.net, &name("www.example.com."), RrType::A);
        assert_eq!(out.rcode, Rcode::NoError);
        assert!(out.authenticated, "multi-anchor config must validate");
    }

    #[test]
    fn island_of_trust_validates_below_insecure_delegation() {
        // example.com is signed but its delegation from com. carries no
        // DS. Without an extra anchor the chain is provably insecure;
        // with an anchor at the island's apex it authenticates.
        let build = || {
            let b = LabBuilder::new(NOW).simple_zone(&name("com."), Denial::nsec3_rfc9276());
            let mut zs = ZoneSpec::new(
                lab::simple_zone_contents(&name("example.com.")),
                Denial::nsec3_rfc9276(),
            );
            zs.unsigned_delegation = true;
            b.zone(zs).build()
        };
        let mut lab = build();
        let plain = resolver_for(&mut lab, Rfc9276Policy::unlimited());
        let out = plain.resolve(&lab.net, &name("www.example.com."), RrType::A);
        assert_eq!(out.rcode, Rcode::NoError);
        assert!(!out.authenticated, "no DS and no island anchor: insecure");

        let mut lab = build();
        let raddr = lab.alloc.v4();
        let mut cfg = ResolverConfig::validating(raddr, lab.root_hints.clone(), lab.anchor.clone());
        cfg.now = lab.now;
        cfg.trust_anchors.push(real_anchor(&name("example.com.")));
        let island = Resolver::new(cfg);
        let out = island.resolve(&lab.net, &name("www.example.com."), RrType::A);
        assert_eq!(out.rcode, Rcode::NoError);
        assert!(out.authenticated, "island anchor re-secures the chain");
    }

    #[test]
    fn mis_anchored_zone_fails_as_anchor_mismatch() {
        // A configured anchor whose digest matches no served DNSKEY must
        // fail closed with the dedicated EDE, not chain on via the DS.
        let mut lab = lab_with_params(&[("example.com.", Nsec3Params::rfc9276())]);
        let raddr = lab.alloc.v4();
        let mut cfg = ResolverConfig::validating(raddr, lab.root_hints.clone(), lab.anchor.clone());
        cfg.now = lab.now;
        let mut bad = real_anchor(&name("example.com."));
        bad.digest[0] ^= 0xFF;
        cfg.trust_anchors.push(bad);
        let r = Resolver::new(cfg);
        let out = r.resolve(&lab.net, &name("www.example.com."), RrType::A);
        assert_eq!(out.rcode, Rcode::ServFail);
        let (code, text) = out.ede.expect("anchor mismatch carries an EDE");
        assert_eq!(code, EdeCode::DNSSEC_BOGUS);
        assert_eq!(text, "trust anchor mismatch");
    }

    #[test]
    fn delegation_cache_is_off_by_default() {
        let mut lab = lab_with_params(&[("example.com.", Nsec3Params::rfc9276())]);
        let r = resolver_for(&mut lab, Rfc9276Policy::unlimited());
        let out = r.resolve(&lab.net, &name("www.example.com."), RrType::A);
        assert_eq!(out.rcode, Rcode::NoError);
        assert_eq!(r.delegation_hits(), 0);
        assert_eq!(r.delegation_misses(), 0);
        assert_eq!(r.delegation_len(), 0);
    }

    #[test]
    fn warm_delegation_cache_saves_upstream_queries() {
        // Two sibling zones under com.: the second walk restarts at the
        // cached com. cut instead of the root and must send strictly
        // fewer upstream messages.
        let mut lab = lab_with_params(&[
            ("alpha.com.", Nsec3Params::rfc9276()),
            ("beta.com.", Nsec3Params::rfc9276()),
        ]);
        let raddr = lab.alloc.v4();
        let mut cfg = ResolverConfig::validating(raddr, lab.root_hints.clone(), lab.anchor.clone());
        cfg.now = lab.now;
        cfg.delegation_cache = true;
        let r = Resolver::new(cfg);
        let cold = r.resolve(&lab.net, &name("www.alpha.com."), RrType::A);
        assert!(cold.authenticated);
        assert_eq!(r.delegation_hits(), 0, "first walk has nothing cached");
        assert!(r.delegation_misses() > 0);
        assert!(r.delegation_len() > 0);
        let warm = r.resolve(&lab.net, &name("www.beta.com."), RrType::A);
        assert!(warm.authenticated);
        assert!(r.delegation_hits() > 0, "second walk restarts at com.");
        assert!(
            warm.cost.messages_sent < cold.cost.messages_sent,
            "warm walk must be strictly cheaper: {} vs {}",
            warm.cost.messages_sent,
            cold.cost.messages_sent
        );
        assert_eq!(r.delegation_evictions(), 0);
    }
}
