//! Resolver-side DNSSEC validation: RRset signature checking and
//! NSEC/NSEC3 denial-proof verification (RFC 4035 §5, RFC 5155 §8).
//!
//! The NSEC3 paths charge every hash chain they compute to a
//! [`CostMeter`] — verifying a closest-encloser proof is exactly the code
//! path CVE-2023-50868 abuses.

use dns_wire::base32;
use dns_wire::name::Name;
use dns_wire::rdata::{RData, NSEC3_FLAG_OPT_OUT, NSEC3_HASH_SHA1};
use dns_wire::record::Record;
use dns_wire::rrtype::RrType;
use dns_zone::nsec3hash::{nsec3_hash_cached, Nsec3Params};
use dns_zone::signer::verify_rrsig;

use crate::cost::CostMeter;

/// A validated DNSKEY set for one zone.
#[derive(Clone, Debug)]
pub struct ZoneKeys {
    /// The zone apex these keys belong to.
    pub apex: Name,
    /// `(key_tag, algorithm, public_key)` triples.
    pub keys: Vec<(u16, u8, Vec<u8>)>,
}

impl ZoneKeys {
    /// Build from a DNSKEY RRset (does not validate it; the caller chains
    /// trust via DS first).
    pub fn from_dnskeys(apex: Name, records: &[Record]) -> Self {
        let keys = records
            .iter()
            .filter_map(|r| match &r.rdata {
                RData::Dnskey {
                    algorithm,
                    public_key,
                    ..
                } => Some((
                    dns_crypto::keytag::key_tag(&r.rdata.canonical_bytes()),
                    *algorithm,
                    public_key.clone(),
                )),
                _ => None,
            })
            .collect();
        ZoneKeys { apex, keys }
    }
}

/// Why validation failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValidationError {
    /// No RRSIG covering the RRset from the expected signer.
    MissingSignature,
    /// Signature exists but the current time is outside its validity.
    Expired,
    /// Signature exists but does not verify.
    BadSignature,
    /// The denial proof is structurally wrong or incomplete.
    BadDenialProof,
    /// NSEC3 records in one response disagree on parameters (RFC 5155
    /// requires them identical).
    InconsistentNsec3,
    /// NSEC3 uses an unknown hash algorithm (zone treated as insecure).
    UnknownNsec3Algorithm,
    /// A configured trust anchor covers the zone apex but no served
    /// DNSKEY matches its tag + digest — a mis-anchored zone. Kept
    /// distinct from [`ValidationError::BadSignature`] so chain-of-trust
    /// studies can tell anchor misconfiguration from on-path tampering.
    AnchorMismatch,
    /// The per-query [`WorkBudget`](crate::policy::WorkBudget) armed on the
    /// meter ran out before validation finished: the response demanded more
    /// hashing or signature checking than the resolver is willing to spend.
    BudgetExceeded,
}

/// Validate one RRset against `keys`: find a temporally-valid RRSIG from
/// the zone's signer and verify it.
pub fn validate_rrset(
    owner: &Name,
    records: &[Record],
    rrsigs: &[Record],
    keys: &ZoneKeys,
    now: u32,
    meter: &CostMeter,
) -> Result<(), ValidationError> {
    let rrtype = match records.first() {
        Some(r) => r.rrtype(),
        None => return Err(ValidationError::MissingSignature),
    };
    let mut saw_candidate = false;
    let mut saw_expired = false;
    for sig in rrsigs {
        let (covered, key_tag, signer, inception, expiration) = match &sig.rdata {
            RData::Rrsig {
                type_covered,
                key_tag,
                signer_name,
                inception,
                expiration,
                ..
            } => (
                *type_covered,
                *key_tag,
                signer_name,
                *inception,
                *expiration,
            ),
            _ => continue,
        };
        if covered != rrtype || signer != &keys.apex {
            continue;
        }
        saw_candidate = true;
        if now < inception || now > expiration {
            saw_expired = true;
            continue;
        }
        for (tag, _alg, public_key) in &keys.keys {
            if *tag != key_tag {
                continue;
            }
            // Colliding-keytag DNSKEY sets (KeyTrap) force this loop to try
            // every key; the budget check bounds the attempts per query.
            if meter.budget_exhausted() {
                return Err(ValidationError::BudgetExceeded);
            }
            meter.add_signature();
            if verify_rrsig(&sig.rdata, owner, records, public_key) {
                return Ok(());
            }
        }
    }
    if saw_expired {
        Err(ValidationError::Expired)
    } else if saw_candidate {
        Err(ValidationError::BadSignature)
    } else {
        Err(ValidationError::MissingSignature)
    }
}

/// One NSEC3 record, parsed for proof checking.
#[derive(Clone, Debug)]
pub struct Nsec3View {
    /// The hash encoded in the owner name's first label.
    pub owner_hash: Vec<u8>,
    /// The record itself (owner, rdata).
    pub record: Record,
    /// Next hashed owner.
    pub next_hash: Vec<u8>,
    /// Opt-out flag.
    pub opt_out: bool,
    /// Types present at the matched name.
    pub types: dns_wire::typebitmap::TypeBitmap,
}

/// Parse and cross-check the NSEC3 records of one response.
///
/// Returns the shared parameters and the parsed views. Fails if parameters
/// disagree (RFC 5155 §8.2) or the algorithm is unknown.
pub fn parse_nsec3_set(
    records: &[&Record],
) -> Result<(Nsec3Params, Vec<Nsec3View>), ValidationError> {
    let mut params: Option<Nsec3Params> = None;
    let mut views = Vec::new();
    for rec in records {
        let (hash_alg, flags, iterations, salt, next_hashed, types) = match &rec.rdata {
            RData::Nsec3 {
                hash_alg,
                flags,
                iterations,
                salt,
                next_hashed,
                types,
            } => (*hash_alg, *flags, *iterations, salt, next_hashed, types),
            _ => continue,
        };
        if hash_alg != NSEC3_HASH_SHA1 {
            return Err(ValidationError::UnknownNsec3Algorithm);
        }
        let p = Nsec3Params {
            hash_alg,
            iterations,
            salt: salt.clone(),
        };
        match &params {
            None => params = Some(p),
            Some(existing) if *existing != p => return Err(ValidationError::InconsistentNsec3),
            _ => {}
        }
        let label = rec
            .name
            .labels()
            .next()
            .map(|l| String::from_utf8_lossy(l).to_string())
            .unwrap_or_default();
        let owner_hash = base32::decode(&label).ok_or(ValidationError::BadDenialProof)?;
        views.push(Nsec3View {
            owner_hash,
            record: (*rec).clone(),
            next_hash: next_hashed.clone(),
            opt_out: flags & NSEC3_FLAG_OPT_OUT != 0,
            types: types.clone(),
        });
    }
    let params = params.ok_or(ValidationError::BadDenialProof)?;
    Ok((params, views))
}

/// Does `hash` fall strictly inside the circular interval
/// `(owner_hash, next_hash)`?
pub fn covers(view: &Nsec3View, hash: &[u8]) -> bool {
    let o = view.owner_hash.as_slice();
    let n = view.next_hash.as_slice();
    if o < n {
        o < hash && hash < n
    } else {
        // Wrap-around interval (or degenerate single-record chain).
        hash > o || hash < n
    }
}

/// Find the NSEC3 whose owner hash equals the hash of `name`.
fn find_matching<'a>(
    views: &'a [Nsec3View],
    name: &Name,
    params: &Nsec3Params,
    meter: &CostMeter,
) -> Option<&'a Nsec3View> {
    // The closest-encloser search hashes overlapping ancestor chains for
    // every denial a resolver validates; the thread cache memoizes them.
    // A hit replays the stored compressions count, so the CVE-2023-50868
    // cost meter is cache-oblivious.
    let h = nsec3_hash_cached(name, params);
    meter.add_nsec3_hash(h.compressions);
    views.iter().find(|v| v.owner_hash == h.digest)
}

/// Find the NSEC3 covering the hash of `name`.
fn find_covering<'a>(
    views: &'a [Nsec3View],
    name: &Name,
    params: &Nsec3Params,
    meter: &CostMeter,
) -> Option<&'a Nsec3View> {
    let h = nsec3_hash_cached(name, params);
    meter.add_nsec3_hash(h.compressions);
    views.iter().find(|v| covers(v, &h.digest))
}

/// Result of a verified closest-encloser proof.
#[derive(Clone, Debug)]
pub struct EncloserProof {
    /// The proven closest encloser.
    pub closest_encloser: Name,
    /// The next-closer name (its nonexistence is what was proven).
    pub next_closer: Name,
    /// Whether the NSEC3 covering the next closer had opt-out set.
    pub opt_out: bool,
}

/// Verify the closest-encloser proof for `qname` (RFC 5155 §8.3).
///
/// Walks candidate enclosers from `qname` toward `apex`; each candidate
/// costs a full NSEC3 hash chain — this loop is the CVE-2023-50868
/// amplifier.
pub fn verify_closest_encloser(
    qname: &Name,
    apex: &Name,
    params: &Nsec3Params,
    views: &[Nsec3View],
    meter: &CostMeter,
) -> Result<EncloserProof, ValidationError> {
    if !qname.is_subdomain_of(apex) {
        return Err(ValidationError::BadDenialProof);
    }
    let mut next_closer = qname.clone();
    let mut candidate = qname.clone();
    loop {
        // Checked before each candidate hash: a crafted deep chain cannot
        // spend more than one chain past the armed budget.
        if meter.budget_exhausted() {
            return Err(ValidationError::BudgetExceeded);
        }
        if let Some(m) = find_matching(views, &candidate, params, meter) {
            // candidate exists; next_closer must be covered.
            if candidate == *qname {
                // qname itself exists: not an NXDOMAIN situation.
                return Err(ValidationError::BadDenialProof);
            }
            let cover = find_covering(views, &next_closer, params, meter)
                .ok_or(ValidationError::BadDenialProof)?;
            let _ = m;
            return Ok(EncloserProof {
                closest_encloser: candidate,
                next_closer,
                opt_out: cover.opt_out,
            });
        }
        if candidate == *apex {
            return Err(ValidationError::BadDenialProof);
        }
        next_closer = candidate.clone();
        candidate = candidate.parent().ok_or(ValidationError::BadDenialProof)?;
    }
}

/// Verify a full NXDOMAIN proof (closest encloser + wildcard denial),
/// RFC 5155 §8.4.
pub fn verify_nxdomain(
    qname: &Name,
    apex: &Name,
    params: &Nsec3Params,
    views: &[Nsec3View],
    meter: &CostMeter,
) -> Result<EncloserProof, ValidationError> {
    let proof = verify_closest_encloser(qname, apex, params, views, meter)?;
    let wildcard = proof
        .closest_encloser
        .prepend(b"*")
        .map_err(|_| ValidationError::BadDenialProof)?;
    if meter.budget_exhausted() {
        return Err(ValidationError::BudgetExceeded);
    }
    // The wildcard must be proven absent (covered). With opt-out the
    // covering record may be the same as the next-closer one.
    find_covering(views, &wildcard, params, meter).ok_or(ValidationError::BadDenialProof)?;
    Ok(proof)
}

/// Verify a NODATA proof: an NSEC3 matches `qname` and its bitmap lacks
/// `qtype` (and CNAME), RFC 5155 §8.5.
pub fn verify_nodata(
    qname: &Name,
    qtype: RrType,
    params: &Nsec3Params,
    views: &[Nsec3View],
    meter: &CostMeter,
) -> Result<(), ValidationError> {
    if meter.budget_exhausted() {
        return Err(ValidationError::BudgetExceeded);
    }
    if let Some(m) = find_matching(views, qname, params, meter) {
        if m.types.contains(qtype) || m.types.contains(RrType::CNAME) {
            return Err(ValidationError::BadDenialProof);
        }
        return Ok(());
    }
    // Opt-out variant (mostly DS queries at insecure delegations): a
    // covering record with opt-out set is acceptable (RFC 5155 §8.6).
    if qtype == RrType::DS {
        if let Some(c) = find_covering(views, qname, params, meter) {
            if c.opt_out {
                return Ok(());
            }
        }
    }
    Err(ValidationError::BadDenialProof)
}

/// Verify the denial part of a wildcard-expanded answer: the RRSIG labels
/// field says the answer came from a wildcard; an NSEC3 must cover the
/// next-closer name derived from that labels count (RFC 5155 §8.8).
pub fn verify_wildcard_expansion(
    qname: &Name,
    rrsig_labels: u8,
    params: &Nsec3Params,
    views: &[Nsec3View],
    meter: &CostMeter,
) -> Result<(), ValidationError> {
    // closest encloser has `rrsig_labels` labels; next closer one more.
    let qlabels = qname.label_count() as u8;
    if rrsig_labels >= qlabels {
        return Err(ValidationError::BadDenialProof);
    }
    let mut next_closer = qname.clone();
    while next_closer.label_count() as u8 > rrsig_labels + 1 {
        next_closer = next_closer
            .parent()
            .ok_or(ValidationError::BadDenialProof)?;
    }
    if meter.budget_exhausted() {
        return Err(ValidationError::BudgetExceeded);
    }
    find_covering(views, &next_closer, params, meter).ok_or(ValidationError::BadDenialProof)?;
    Ok(())
}

/// NSEC (unhashed) denial checks, RFC 4035 §5.4.
pub mod nsec {
    use super::*;

    /// Does this NSEC record (owner, next) cover `name` in canonical order?
    pub fn nsec_covers(owner: &Name, next: &Name, name: &Name) -> bool {
        use std::cmp::Ordering::Less;
        let after_owner = owner.canonical_cmp(name) == Less;
        if owner.canonical_cmp(next) == Less {
            after_owner && name.canonical_cmp(next) == Less
        } else {
            // Wrap: next is the apex.
            after_owner || name.canonical_cmp(next) == Less
        }
    }

    /// Verify an NSEC NXDOMAIN proof: some NSEC covers `qname` and some
    /// NSEC covers the source-of-synthesis wildcard.
    pub fn verify_nxdomain(qname: &Name, nsec_records: &[&Record]) -> Result<(), ValidationError> {
        let mut covered_qname = None;
        for rec in nsec_records {
            if let RData::Nsec { next, .. } = &rec.rdata {
                if nsec_covers(&rec.name, next, qname) {
                    covered_qname = Some(rec);
                    break;
                }
            }
        }
        let covering = covered_qname.ok_or(ValidationError::BadDenialProof)?;
        // The closest encloser is the longest common ancestor of the
        // covering NSEC's owner and qname; the wildcard at it must be
        // covered too.
        let ce = longest_common_ancestor(&covering.name, qname);
        let wildcard = ce
            .prepend(b"*")
            .map_err(|_| ValidationError::BadDenialProof)?;
        let wildcard_ok = nsec_records.iter().any(|rec| {
            if let RData::Nsec { next, .. } = &rec.rdata {
                nsec_covers(&rec.name, next, &wildcard) || rec.name == wildcard
            } else {
                false
            }
        });
        if wildcard_ok {
            Ok(())
        } else {
            Err(ValidationError::BadDenialProof)
        }
    }

    fn longest_common_ancestor(a: &Name, b: &Name) -> Name {
        let la: Vec<&[u8]> = a.labels().collect();
        let lb: Vec<&[u8]> = b.labels().collect();
        let mut common: Vec<Vec<u8>> = Vec::new();
        for (x, y) in la.iter().rev().zip(lb.iter().rev()) {
            if x.eq_ignore_ascii_case(y) {
                common.push(x.to_vec());
            } else {
                break;
            }
        }
        common.reverse();
        Name::from_labels(common).unwrap_or_else(|_| Name::root())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::name::name;
    use dns_wire::rrtype::RrType;
    use dns_zone::denial;
    use dns_zone::signer::{sign_zone, SignerConfig};
    use dns_zone::Zone;
    use std::net::Ipv4Addr;

    const NOW: u32 = 1_710_000_000;

    fn signed_zone(params: Nsec3Params) -> dns_zone::SignedZone {
        let mut z = Zone::new(name("example."));
        z.add(Record::new(
            name("example."),
            3600,
            RData::Soa {
                mname: name("ns1.example."),
                rname: name("host.example."),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            },
        ))
        .unwrap();
        z.add(Record::new(
            name("www.example."),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ))
        .unwrap();
        z.add(Record::new(
            name("a.b.example."),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 2)),
        ))
        .unwrap();
        sign_zone(
            &z,
            &SignerConfig::with_nsec3(&name("example."), NOW, params, false),
        )
        .unwrap()
    }

    fn nxdomain_views(z: &dns_zone::SignedZone, qname: &Name) -> (Nsec3Params, Vec<Nsec3View>) {
        let proof = denial::nxdomain_proof(z, qname).unwrap();
        let nsec3s: Vec<&Record> = proof
            .records
            .iter()
            .filter(|r| r.rrtype() == RrType::NSEC3)
            .collect();
        parse_nsec3_set(&nsec3s).unwrap()
    }

    #[test]
    fn rrset_validation_accepts_good_and_rejects_bad() {
        let z = signed_zone(Nsec3Params::rfc9276());
        let keys = ZoneKeys::from_dnskeys(
            name("example."),
            z.zone.rrset(&name("example."), RrType::DNSKEY).unwrap(),
        );
        let owner = name("www.example.");
        let rrset = z.zone.rrset(&owner, RrType::A).unwrap().to_vec();
        let sigs = z.zone.rrset(&owner, RrType::RRSIG).unwrap().to_vec();
        let meter = CostMeter::new();
        assert!(validate_rrset(&owner, &rrset, &sigs, &keys, NOW, &meter).is_ok());
        assert!(meter.signatures_verified() >= 1);
        // Expired clock.
        assert_eq!(
            validate_rrset(&owner, &rrset, &sigs, &keys, NOW + 100 * 86_400, &meter),
            Err(ValidationError::Expired)
        );
        // Tampered data.
        let mut bad = rrset.clone();
        bad[0].rdata = RData::A(Ipv4Addr::new(9, 9, 9, 9));
        assert_eq!(
            validate_rrset(&owner, &bad, &sigs, &keys, NOW, &meter),
            Err(ValidationError::BadSignature)
        );
        // No signature at all.
        assert_eq!(
            validate_rrset(&owner, &rrset, &[], &keys, NOW, &meter),
            Err(ValidationError::MissingSignature)
        );
    }

    #[test]
    fn nxdomain_proof_verifies() {
        let z = signed_zone(Nsec3Params::rfc9276());
        let qname = name("nx.example.");
        let (params, views) = nxdomain_views(&z, &qname);
        let meter = CostMeter::new();
        let proof = verify_nxdomain(&qname, &name("example."), &params, &views, &meter).unwrap();
        assert_eq!(proof.closest_encloser, name("example."));
        assert_eq!(proof.next_closer, name("nx.example."));
        assert!(meter.nsec3_hashes() >= 3);
    }

    #[test]
    fn nxdomain_proof_cost_scales_with_iterations() {
        let base = {
            let z = signed_zone(Nsec3Params::rfc9276());
            let qname = name("a.very.deep.name.example.");
            let (params, views) = nxdomain_views(&z, &qname);
            let meter = CostMeter::new();
            verify_nxdomain(&qname, &name("example."), &params, &views, &meter).unwrap();
            meter.sha1_compressions()
        };
        let heavy = {
            let z = signed_zone(Nsec3Params::new(150, vec![0xab; 8]));
            let qname = name("a.very.deep.name.example.");
            let (params, views) = nxdomain_views(&z, &qname);
            let meter = CostMeter::new();
            verify_nxdomain(&qname, &name("example."), &params, &views, &meter).unwrap();
            meter.sha1_compressions()
        };
        assert!(
            heavy > base * 100,
            "expected >100x blow-up, got {heavy} vs {base}"
        );
    }

    #[test]
    fn budget_aborts_deep_encloser_walk_with_bounded_overshoot() {
        use crate::policy::WorkBudget;
        let z = signed_zone(Nsec3Params::new(150, vec![0xab; 8]));
        let qname = name("a.very.deep.name.example.");
        let (params, views) = nxdomain_views(&z, &qname);
        let meter = CostMeter::new();
        meter.arm_budget(&WorkBudget {
            max_compressions: Some(200),
            max_signatures: None,
        });
        assert_eq!(
            verify_nxdomain(&qname, &name("example."), &params, &views, &meter).map(|_| ()),
            Err(ValidationError::BudgetExceeded)
        );
        // Each chain at 150 iterations / 8-byte salt costs 151 compressions;
        // the pre-chain check bounds overshoot to a single chain.
        assert!(
            meter.sha1_compressions() <= 200 + 151,
            "overshoot beyond one chain: {}",
            meter.sha1_compressions()
        );
        // The same proof verifies once the budget is lifted.
        meter.disarm_budget();
        assert!(verify_nxdomain(&qname, &name("example."), &params, &views, &meter).is_ok());
    }

    #[test]
    fn budget_aborts_signature_attempts() {
        use crate::policy::WorkBudget;
        let z = signed_zone(Nsec3Params::rfc9276());
        let keys = ZoneKeys::from_dnskeys(
            name("example."),
            z.zone.rrset(&name("example."), RrType::DNSKEY).unwrap(),
        );
        let owner = name("www.example.");
        let rrset = z.zone.rrset(&owner, RrType::A).unwrap().to_vec();
        let sigs = z.zone.rrset(&owner, RrType::RRSIG).unwrap().to_vec();
        let meter = CostMeter::new();
        meter.arm_budget(&WorkBudget {
            max_compressions: None,
            max_signatures: Some(0),
        });
        assert_eq!(
            validate_rrset(&owner, &rrset, &sigs, &keys, NOW, &meter),
            Err(ValidationError::BudgetExceeded)
        );
        assert_eq!(meter.signatures_verified(), 0);
    }

    #[test]
    fn nodata_proof_verifies_and_detects_lies() {
        let z = signed_zone(Nsec3Params::rfc9276());
        let qname = name("www.example.");
        let proof = denial::nodata_proof(&z, &qname).unwrap();
        let nsec3s: Vec<&Record> = proof
            .records
            .iter()
            .filter(|r| r.rrtype() == RrType::NSEC3)
            .collect();
        let (params, views) = parse_nsec3_set(&nsec3s).unwrap();
        let meter = CostMeter::new();
        // TXT absent: proof valid.
        assert!(verify_nodata(&qname, RrType::TXT, &params, &views, &meter).is_ok());
        // A present: the same proof must NOT validate a NODATA for A.
        assert!(verify_nodata(&qname, RrType::A, &params, &views, &meter).is_err());
    }

    #[test]
    fn inconsistent_params_rejected() {
        let z = signed_zone(Nsec3Params::rfc9276());
        let qname = name("nx.example.");
        let proof = denial::nxdomain_proof(&z, &qname).unwrap();
        let mut recs: Vec<Record> = proof
            .records
            .iter()
            .filter(|r| r.rrtype() == RrType::NSEC3)
            .cloned()
            .collect();
        if let RData::Nsec3 { iterations, .. } = &mut recs[0].rdata {
            *iterations += 1;
        }
        if recs.len() > 1 {
            let refs: Vec<&Record> = recs.iter().collect();
            assert!(matches!(
                parse_nsec3_set(&refs),
                Err(ValidationError::InconsistentNsec3)
            ));
        }
    }

    #[test]
    fn unknown_hash_algorithm_flagged() {
        let rec = Record::new(
            name("abcd0123.example."),
            300,
            RData::Nsec3 {
                hash_alg: 7,
                flags: 0,
                iterations: 0,
                salt: vec![],
                next_hashed: vec![0; 20],
                types: Default::default(),
            },
        );
        assert!(matches!(
            parse_nsec3_set(&[&rec]),
            Err(ValidationError::UnknownNsec3Algorithm)
        ));
    }

    #[test]
    fn proof_for_existing_name_rejected() {
        let z = signed_zone(Nsec3Params::rfc9276());
        // Take a valid NXDOMAIN proof but claim it denies www.example.
        let (params, views) = nxdomain_views(&z, &name("nx.example."));
        let meter = CostMeter::new();
        assert!(verify_nxdomain(
            &name("www.example."),
            &name("example."),
            &params,
            &views,
            &meter
        )
        .is_err());
    }

    #[test]
    fn covers_handles_wraparound() {
        let v = Nsec3View {
            owner_hash: vec![0xf0; 20],
            record: Record::new(
                name("x."),
                0,
                RData::Nsec3 {
                    hash_alg: 1,
                    flags: 0,
                    iterations: 0,
                    salt: vec![],
                    next_hashed: vec![0x10; 20],
                    types: Default::default(),
                },
            ),
            next_hash: vec![0x10; 20],
            opt_out: false,
            types: Default::default(),
        };
        assert!(covers(&v, &[0xff; 20]));
        assert!(covers(&v, &[0x00; 20]));
        assert!(!covers(&v, &[0x20; 20]));
        assert!(!covers(&v, &[0xf0; 20])); // owner itself not covered
    }

    #[test]
    fn nsec_cover_logic() {
        use super::nsec::nsec_covers;
        // owner=a.example., next=c.example. covers b.example.
        assert!(nsec_covers(
            &name("a.example."),
            &name("c.example."),
            &name("b.example.")
        ));
        assert!(!nsec_covers(
            &name("a.example."),
            &name("c.example."),
            &name("d.example.")
        ));
        // Wrap: owner=z.example., next=example. covers zz.example.
        assert!(nsec_covers(
            &name("z.example."),
            &name("example."),
            &name("zz.example.")
        ));
    }

    #[test]
    fn wildcard_expansion_denial_verifies() {
        let mut z = Zone::new(name("example."));
        z.add(Record::new(
            name("example."),
            3600,
            RData::Soa {
                mname: name("ns1.example."),
                rname: name("host.example."),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            },
        ))
        .unwrap();
        z.add(Record::new(
            name("*.example."),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 9)),
        ))
        .unwrap();
        let s = sign_zone(&z, &SignerConfig::standard(&name("example."), NOW)).unwrap();
        let qname = name("synth.example.");
        let proof = denial::wildcard_expansion_proof(&s, &qname, &name("example.")).unwrap();
        let nsec3s: Vec<&Record> = proof
            .records
            .iter()
            .filter(|r| r.rrtype() == RrType::NSEC3)
            .collect();
        let (params, views) = parse_nsec3_set(&nsec3s).unwrap();
        let meter = CostMeter::new();
        // RRSIG over *.example. has labels=1; qname has 2.
        assert!(verify_wildcard_expansion(&qname, 1, &params, &views, &meter).is_ok());
        assert!(verify_wildcard_expansion(&qname, 2, &params, &views, &meter).is_err());
    }
}
