//! Vendor behaviour profiles: the iteration-limit policies of the resolver
//! implementations and public DNS services the paper identifies (§4.2,
//! §5.2).
//!
//! | Software / service        | Behaviour above limit | Limit | EDE |
//! |---------------------------|-----------------------|-------|-----|
//! | BIND 9.16.16 (2021)       | insecure              | 150   | 27  |
//! | BIND 9.19.19 (2023, CVE)  | insecure              | 50    | 27  |
//! | Unbound 1.13.2            | insecure              | 150   | 27  |
//! | Knot Resolver 5.3.1       | insecure              | 150   | 27  |
//! | Knot Resolver (2023, CVE) | insecure              | 50    | 27  |
//! | PowerDNS Recursor 4.5     | insecure              | 150   | 27  |
//! | PowerDNS Recursor 5.0     | insecure              | 50    | 27  |
//! | Google Public DNS         | insecure              | 100   | 5/12, not 27 |
//! | Cloudflare 1.1.1.1        | SERVFAIL              | 150   | 27  |
//! | Cisco OpenDNS             | SERVFAIL              | 150   | none |
//! | Quad9                     | insecure              | 150   | none |
//! | Technitium                | SERVFAIL              | 100   | 27 + EXTRA-TEXT |

use dns_wire::edns::EdeCode;

use crate::policy::Rfc9276Policy;

/// A recognizable resolver implementation or public service.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum VendorProfile {
    Bind9_2021,
    Bind9_2023,
    Unbound,
    KnotResolver2021,
    KnotResolver2023,
    PowerDnsRecursor2021,
    PowerDnsRecursor2023,
    GooglePublicDns,
    Cloudflare,
    OpenDns,
    Quad9,
    Technitium,
    /// A validator predating the 2021 updates: no limits.
    LegacyUnlimited,
}

impl VendorProfile {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            VendorProfile::Bind9_2021 => "BIND 9.16 (2021)",
            VendorProfile::Bind9_2023 => "BIND 9.19 (2023)",
            VendorProfile::Unbound => "Unbound",
            VendorProfile::KnotResolver2021 => "Knot Resolver (2021)",
            VendorProfile::KnotResolver2023 => "Knot Resolver (2023)",
            VendorProfile::PowerDnsRecursor2021 => "PowerDNS Recursor 4.5",
            VendorProfile::PowerDnsRecursor2023 => "PowerDNS Recursor 5.0",
            VendorProfile::GooglePublicDns => "Google Public DNS",
            VendorProfile::Cloudflare => "Cloudflare 1.1.1.1",
            VendorProfile::OpenDns => "Cisco OpenDNS",
            VendorProfile::Quad9 => "Quad9",
            VendorProfile::Technitium => "Technitium DNS Server",
            VendorProfile::LegacyUnlimited => "pre-2021 validator",
        }
    }

    /// The RFC 9276 policy this vendor ships.
    pub fn policy(self) -> Rfc9276Policy {
        match self {
            VendorProfile::Bind9_2021
            | VendorProfile::Unbound
            | VendorProfile::KnotResolver2021
            | VendorProfile::PowerDnsRecursor2021 => Rfc9276Policy::insecure_above(150),
            VendorProfile::Bind9_2023
            | VendorProfile::KnotResolver2023
            | VendorProfile::PowerDnsRecursor2023 => Rfc9276Policy::insecure_above(50),
            VendorProfile::GooglePublicDns => Rfc9276Policy {
                // Insecure above 100; EDE present but with Google's codes
                // (5 DNSSEC Indeterminate / 12 NSEC Missing), not 27.
                ede_code: EdeCode::DNSSEC_INDETERMINATE,
                ..Rfc9276Policy::insecure_above(100)
            },
            VendorProfile::Cloudflare => Rfc9276Policy::servfail_above(150),
            VendorProfile::OpenDns => Rfc9276Policy {
                emit_ede: false,
                ..Rfc9276Policy::servfail_above(150)
            },
            VendorProfile::Quad9 => Rfc9276Policy {
                emit_ede: false,
                ..Rfc9276Policy::insecure_above(150)
            },
            VendorProfile::Technitium => Rfc9276Policy {
                ede_extra_text: "NSEC3 iterations count is greater than 100".to_string(),
                ..Rfc9276Policy::servfail_above(100)
            },
            VendorProfile::LegacyUnlimited => Rfc9276Policy::unlimited(),
        }
    }

    /// The iteration value *above which* behaviour changes, if limited.
    pub fn threshold(self) -> Option<u16> {
        let p = self.policy();
        p.servfail_above.or(p.insecure_above)
    }

    /// All profiles, for sweeps.
    pub fn all() -> &'static [VendorProfile] {
        &[
            VendorProfile::Bind9_2021,
            VendorProfile::Bind9_2023,
            VendorProfile::Unbound,
            VendorProfile::KnotResolver2021,
            VendorProfile::KnotResolver2023,
            VendorProfile::PowerDnsRecursor2021,
            VendorProfile::PowerDnsRecursor2023,
            VendorProfile::GooglePublicDns,
            VendorProfile::Cloudflare,
            VendorProfile::OpenDns,
            VendorProfile::Quad9,
            VendorProfile::Technitium,
            VendorProfile::LegacyUnlimited,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::LimitAction;

    #[test]
    fn thresholds_match_the_paper() {
        assert_eq!(VendorProfile::Bind9_2021.threshold(), Some(150));
        assert_eq!(VendorProfile::Bind9_2023.threshold(), Some(50));
        assert_eq!(VendorProfile::Unbound.threshold(), Some(150));
        assert_eq!(VendorProfile::GooglePublicDns.threshold(), Some(100));
        assert_eq!(VendorProfile::Cloudflare.threshold(), Some(150));
        assert_eq!(VendorProfile::Technitium.threshold(), Some(100));
        assert_eq!(VendorProfile::LegacyUnlimited.threshold(), None);
    }

    #[test]
    fn servfail_vs_insecure_split() {
        // SERVFAIL camp.
        for v in [
            VendorProfile::Cloudflare,
            VendorProfile::OpenDns,
            VendorProfile::Technitium,
        ] {
            let p = v.policy();
            assert!(p.servfail_above.is_some(), "{}", v.name());
            assert_eq!(p.action_for(151, 0), LimitAction::ServFail, "{}", v.name());
        }
        // Insecure camp.
        for v in [
            VendorProfile::Bind9_2021,
            VendorProfile::GooglePublicDns,
            VendorProfile::Quad9,
        ] {
            let p = v.policy();
            assert!(p.servfail_above.is_none(), "{}", v.name());
            assert_eq!(
                p.action_for(151, 0),
                LimitAction::TreatInsecure,
                "{}",
                v.name()
            );
        }
    }

    #[test]
    fn ede_matrix_matches_section_5_2() {
        assert!(VendorProfile::Cloudflare.policy().emit_ede);
        assert_eq!(
            VendorProfile::Cloudflare.policy().ede_code,
            EdeCode::UNSUPPORTED_NSEC3_ITERATIONS
        );
        assert!(!VendorProfile::OpenDns.policy().emit_ede);
        assert!(!VendorProfile::Quad9.policy().emit_ede);
        assert_eq!(
            VendorProfile::GooglePublicDns.policy().ede_code,
            EdeCode::DNSSEC_INDETERMINATE
        );
        assert!(!VendorProfile::Technitium.policy().ede_extra_text.is_empty());
    }

    #[test]
    fn google_boundary_is_100_101() {
        let p = VendorProfile::GooglePublicDns.policy();
        assert_eq!(p.action_for(100, 0), LimitAction::Process);
        assert_eq!(p.action_for(101, 0), LimitAction::TreatInsecure);
    }
}
