//! A miniature signed DNS hierarchy on the simulated network — the shared
//! lab that resolver tests, the scanner, the `rfc9276-in-the-wild` testbed
//! and the benchmarks all build on.
//!
//! [`LabBuilder`] takes zone specifications, wires them into a root → TLD →
//! child delegation tree with automatic SOA/NS/glue/DS records, signs
//! everything (optionally with injected faults), stands up one
//! authoritative server per zone, and hands back the [`Lab`] with root
//! hints and a trust anchor ready for [`crate::resolver::Resolver`]s.

use std::collections::HashMap;
use std::net::IpAddr;
use std::rc::Rc;

use dns_auth::AuthServer;
use dns_crypto::sha256::sha256;
use dns_wire::name::Name;
use dns_wire::rdata::RData;
use dns_wire::record::Record;
use dns_zone::signer::{sign_zone, Denial, SignedZone, SignerConfig, SigningKey};
use dns_zone::Zone;
use netsim::{AddrAlloc, Network};

use crate::resolver::TrustAnchor;

/// Post-signing mutation hook (fault injection).
pub type PostSign = Box<dyn FnOnce(&mut SignedZone)>;

/// Specification of one zone in the lab.
pub struct ZoneSpec {
    /// The zone contents (SOA/NS/glue added automatically if missing).
    pub zone: Zone,
    /// Denial mechanism and parameters.
    pub denial: Denial,
    /// Sign with an already-expired validity window.
    pub expired: bool,
    /// Parent publishes no DS (insecure delegation) despite signing.
    pub unsigned_delegation: bool,
    /// Do not sign at all: no DNSKEY, no denial chain (implies an
    /// unsigned delegation).
    pub unsigned: bool,
    /// Parent publishes a DS whose digest is corrupted (one byte
    /// flipped): the delegation looks secure but the child's DNSKEYs can
    /// never match — the broken-DS chain-of-trust scenario.
    pub broken_ds: bool,
    /// Delegated but not stood up: NS+glue exist in the parent, yet no
    /// server answers at the glue addresses (a lame delegation).
    pub lame: bool,
    /// Arbitrary post-signing mutation (fault injection).
    pub post_sign: Option<PostSign>,
    /// Extra DNSKEY RDATAs published verbatim ahead of the real keys
    /// (keytag-collision workloads; see `dns_zone::signer::decoy_dnskeys`).
    pub extra_dnskeys: Vec<RData>,
}

impl ZoneSpec {
    /// A plainly-signed zone with the given denial config.
    pub fn new(zone: Zone, denial: Denial) -> Self {
        ZoneSpec {
            zone,
            denial,
            expired: false,
            unsigned_delegation: false,
            unsigned: false,
            broken_ds: false,
            lame: false,
            post_sign: None,
            extra_dnskeys: Vec::new(),
        }
    }

    /// An entirely unsigned zone.
    pub fn unsigned(zone: Zone) -> Self {
        ZoneSpec {
            unsigned: true,
            unsigned_delegation: true,
            ..Self::new(zone, Denial::Nsec)
        }
    }
}

/// The built lab.
pub struct Lab {
    /// The simulated network.
    pub net: Rc<Network>,
    /// Root server addresses for resolver configuration.
    pub root_hints: Vec<IpAddr>,
    /// Trust anchor over the root KSK.
    pub anchor: TrustAnchor,
    /// Per-zone server addresses `(v4, v6)`.
    pub servers: HashMap<Name, (IpAddr, IpAddr)>,
    /// Per-zone authoritative server handles (query logs etc.).
    pub auths: HashMap<Name, Rc<AuthServer>>,
    /// The signed zones, by apex.
    pub zones: HashMap<Name, SignedZone>,
    /// Address allocator for clients/resolvers joining the lab.
    pub alloc: AddrAlloc,
    /// The `now` timestamp the lab was signed at.
    pub now: u32,
}

/// Builder for [`Lab`].
pub struct LabBuilder {
    now: u32,
    seed: u64,
    specs: Vec<ZoneSpec>,
}

impl LabBuilder {
    /// Start a lab signed at `now` (epoch seconds).
    pub fn new(now: u32) -> Self {
        LabBuilder {
            now,
            seed: 42,
            specs: Vec::new(),
        }
    }

    /// Network RNG seed (default 42).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Add a zone (the root is added automatically if absent).
    pub fn zone(mut self, spec: ZoneSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Convenience: a leaf zone holding one `www` A record, with the given
    /// denial config.
    pub fn simple_zone(self, apex: &Name, denial: Denial) -> Self {
        self.zone(ZoneSpec::new(simple_zone_contents(apex), denial))
    }

    /// Wire, sign, and register everything.
    pub fn build(mut self) -> Lab {
        let net = Rc::new(Network::new(self.seed));
        let mut alloc = AddrAlloc::new();
        let now = self.now;

        // Ensure a root spec exists.
        if !self.specs.iter().any(|s| s.zone.apex().is_root()) {
            self.specs.insert(
                0,
                ZoneSpec::new(Zone::new(Name::root()), Denial::nsec3_rfc9276()),
            );
        }

        // Allocate servers and index specs by apex.
        let mut addrs: HashMap<Name, (IpAddr, IpAddr)> = HashMap::new();
        for spec in &self.specs {
            addrs.insert(spec.zone.apex().clone(), (alloc.v4(), alloc.v6()));
        }

        // Sort apexes so parents come before children.
        let mut order: Vec<usize> = (0..self.specs.len()).collect();
        order.sort_by_key(|&i| self.specs[i].zone.apex().label_count());

        // Add SOA/NS/glue to every zone, then delegations into parents.
        let apexes: Vec<Name> = self.specs.iter().map(|s| s.zone.apex().clone()).collect();
        for spec in &mut self.specs {
            let apex = spec.zone.apex().clone();
            let (v4, v6) = addrs[&apex];
            ensure_infrastructure(&mut spec.zone, &apex, v4, v6);
        }
        // Delegations: each non-root zone gets NS+glue(+DS) in its parent.
        for i in 0..self.specs.len() {
            let apex = self.specs[i].zone.apex().clone();
            if apex.is_root() {
                continue;
            }
            let parent_apex = apexes
                .iter()
                .filter(|a| **a != apex && apex.is_subdomain_of(a))
                .max_by_key(|a| a.label_count())
                .cloned()
                .expect("root exists");
            let (v4, v6) = addrs[&apex];
            let ns_name = Name::parse("ns1").unwrap().concat(&apex).unwrap();
            let insecure = self.specs[i].unsigned_delegation || self.specs[i].unsigned;
            let broken_ds = self.specs[i].broken_ds;
            let ksk = SigningKey::ksk(&apex);
            let parent = self
                .specs
                .iter_mut()
                .find(|s| *s.zone.apex() == parent_apex)
                .expect("parent spec");
            parent
                .zone
                .add(Record::new(apex.clone(), 3600, RData::Ns(ns_name.clone())))
                .unwrap();
            match (v4, v6) {
                (IpAddr::V4(a4), IpAddr::V6(a6)) => {
                    parent
                        .zone
                        .add(Record::new(ns_name.clone(), 3600, RData::A(a4)))
                        .unwrap();
                    parent
                        .zone
                        .add(Record::new(ns_name.clone(), 3600, RData::Aaaa(a6)))
                        .unwrap();
                }
                _ => unreachable!("alloc order"),
            }
            if !insecure {
                let mut ds = ds_record(&apex, &ksk);
                if broken_ds {
                    // Flip one digest byte: the DS RRset still validates
                    // under the parent's signatures (it is what the
                    // parent serves), but no child DNSKEY can match it.
                    if let RData::Ds { digest, .. } = &mut ds.rdata {
                        digest[0] ^= 0xFF;
                    }
                }
                parent.zone.add(ds).unwrap();
            }
        }

        // Sign (parents before children is irrelevant for signing itself).
        let mut zones: HashMap<Name, SignedZone> = HashMap::new();
        let mut auths: HashMap<Name, Rc<AuthServer>> = HashMap::new();
        for spec in self.specs.drain(..) {
            let apex = spec.zone.apex().clone();
            let mut signed = if spec.unsigned {
                SignedZone {
                    zone: spec.zone,
                    denial: spec.denial.clone(),
                    keys: Vec::new(),
                    nsec3_index: Vec::new(),
                }
            } else {
                let mut cfg = SignerConfig {
                    denial: spec.denial.clone(),
                    extra_dnskeys: spec.extra_dnskeys.clone(),
                    ..SignerConfig::standard(&apex, now)
                };
                if spec.expired {
                    cfg.inception = now.saturating_sub(60 * 86_400);
                    cfg.expiration = now.saturating_sub(30 * 86_400);
                }
                sign_zone(&spec.zone, &cfg).expect("lab zone signs")
            };
            if let Some(post) = spec.post_sign {
                post(&mut signed);
            }
            let server = Rc::new(AuthServer::new());
            server.add_zone(signed.clone());
            let (v4, v6) = addrs[&apex];
            if !spec.lame {
                net.register(v4, server.clone());
                net.register(v6, server.clone());
            }
            zones.insert(apex.clone(), signed);
            auths.insert(apex, server);
        }

        // Trust anchor over the root KSK.
        let root_ksk = SigningKey::ksk(&Name::root());
        let anchor = TrustAnchor {
            zone: Name::root(),
            key_tag: root_ksk.key_tag(),
            digest: {
                let mut buf = Name::root().to_canonical_wire();
                buf.extend_from_slice(&root_ksk.dnskey_rdata().canonical_bytes());
                sha256(&buf).to_vec()
            },
        };
        let root_hints = vec![addrs[&Name::root()].0, addrs[&Name::root()].1];
        Lab {
            net,
            root_hints,
            anchor,
            servers: addrs,
            auths,
            zones,
            alloc,
            now,
        }
    }
}

/// Give a zone SOA, apex NS and glue if it lacks them.
fn ensure_infrastructure(zone: &mut Zone, apex: &Name, v4: IpAddr, v6: IpAddr) {
    use dns_wire::rrtype::RrType;
    let ns_name = Name::parse("ns1").unwrap().concat(apex).unwrap();
    if zone.rrset(apex, RrType::SOA).is_none() {
        zone.add(Record::new(
            apex.clone(),
            3600,
            RData::Soa {
                mname: ns_name.clone(),
                rname: Name::parse("hostmaster").unwrap().concat(apex).unwrap(),
                serial: 2024030501,
                refresh: 7200,
                retry: 3600,
                expire: 1_209_600,
                minimum: 300,
            },
        ))
        .unwrap();
    }
    if zone.rrset(apex, RrType::NS).is_none() {
        zone.add(Record::new(apex.clone(), 3600, RData::Ns(ns_name.clone())))
            .unwrap();
        if let (IpAddr::V4(a4), IpAddr::V6(a6)) = (v4, v6) {
            zone.add(Record::new(ns_name.clone(), 3600, RData::A(a4)))
                .unwrap();
            zone.add(Record::new(ns_name, 3600, RData::Aaaa(a6)))
                .unwrap();
        }
    }
}

/// The DS record the parent publishes for a child's KSK.
pub fn ds_record(child_apex: &Name, ksk: &SigningKey) -> Record {
    let rdata = ksk.dnskey_rdata();
    let mut buf = child_apex.to_canonical_wire();
    buf.extend_from_slice(&rdata.canonical_bytes());
    Record::new(
        child_apex.clone(),
        3600,
        RData::Ds {
            key_tag: ksk.key_tag(),
            algorithm: ksk.algorithm,
            digest_type: 2,
            digest: sha256(&buf).to_vec(),
        },
    )
}

/// Leaf-zone contents used by [`LabBuilder::simple_zone`]: a `www` A record
/// and an apex A record.
pub fn simple_zone_contents(apex: &Name) -> Zone {
    let mut z = Zone::new(apex.clone());
    let www = Name::parse("www").unwrap().concat(apex).unwrap();
    z.add(Record::new(
        apex.clone(),
        300,
        RData::A("192.0.2.80".parse().unwrap()),
    ))
    .unwrap();
    z.add(Record::new(
        www,
        300,
        RData::A("192.0.2.81".parse().unwrap()),
    ))
    .unwrap();
    z
}
