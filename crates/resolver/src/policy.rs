//! The RFC 9276 validator-side policy knobs (Table 1, items 6–12).

use dns_wire::edns::EdeCode;

/// How a validating resolver treats NSEC3 iteration counts and related
/// corner cases. Every knob corresponds to an item of RFC 9276 Table 1.
#[derive(Clone, Debug, PartialEq)]
pub struct Rfc9276Policy {
    /// Item 6 (MAY): treat responses whose NSEC3 records carry more than
    /// this many additional iterations as *insecure* (strip AD, skip proof
    /// validation). `None` = no limit.
    pub insecure_above: Option<u16>,
    /// Item 8 (MAY): return SERVFAIL when NSEC3 iterations exceed this.
    /// `None` = never. When both limits are set RFC 9276 item 12 says they
    /// SHOULD be equal; the paper found 4.3 % of validators with a gap.
    pub servfail_above: Option<u16>,
    /// Item 7 (SHOULD): verify the RRSIG over NSEC3 records *before*
    /// honoring their iteration count for the insecure downgrade. The
    /// paper found 0.2 % of validators skipping this.
    pub verify_nsec3_rrsig: bool,
    /// Items 10–11: attach EDE INFO-CODE 27 to insecure/SERVFAIL responses
    /// triggered by the limits.
    pub emit_ede: bool,
    /// Some public resolvers attach a *different* EDE code (Google returns
    /// 5 "DNSSEC Indeterminate" or 12 "NSEC Missing" instead of 27).
    pub ede_code: EdeCode,
    /// EXTRA-TEXT to attach alongside the EDE (Technitium style).
    pub ede_extra_text: String,
    /// Salt length above which the same limit treatment applies (no RFC
    /// number assigns this, but CVE-2023-50868 patches bound total work;
    /// `None` = salt ignored).
    pub max_salt_len: Option<u8>,
}

impl Rfc9276Policy {
    /// No limits at all: the pre-2021 validator behaviour.
    pub fn unlimited() -> Self {
        Rfc9276Policy {
            insecure_above: None,
            servfail_above: None,
            verify_nsec3_rrsig: true,
            emit_ede: false,
            ede_code: EdeCode::UNSUPPORTED_NSEC3_ITERATIONS,
            ede_extra_text: String::new(),
            max_salt_len: None,
        }
    }

    /// Insecure above `n` iterations (item 6), EDE 27 attached.
    pub fn insecure_above(n: u16) -> Self {
        Rfc9276Policy {
            insecure_above: Some(n),
            emit_ede: true,
            ..Self::unlimited()
        }
    }

    /// SERVFAIL above `n` iterations (item 8), EDE 27 attached.
    pub fn servfail_above(n: u16) -> Self {
        Rfc9276Policy {
            servfail_above: Some(n),
            emit_ede: true,
            ..Self::unlimited()
        }
    }

    /// The action the policy prescribes for a response using `iterations`
    /// additional iterations and a salt of `salt_len` bytes.
    pub fn action_for(&self, iterations: u16, salt_len: usize) -> LimitAction {
        let over_salt = self
            .max_salt_len
            .map(|m| salt_len > m as usize)
            .unwrap_or(false);
        if let Some(limit) = self.servfail_above {
            if iterations > limit || over_salt {
                return LimitAction::ServFail;
            }
        }
        if let Some(limit) = self.insecure_above {
            if iterations > limit || over_salt {
                return LimitAction::TreatInsecure;
            }
        }
        LimitAction::Process
    }
}

impl Default for Rfc9276Policy {
    /// The RFC 9276-recommended modern default, matching the post-CVE
    /// patches of BIND 9.19.19 / Knot / PowerDNS: insecure above 50.
    fn default() -> Self {
        Self::insecure_above(50)
    }
}

/// Per-query validator work budget — the backstop below the iteration
/// clamp's radar.
///
/// `Rfc9276Policy` rejects *declared* cost (the iteration count and salt
/// length printed in the NSEC3 records). Two attack families slip past it:
/// deep closest-encloser chains keep iterations under the clamp but multiply
/// the number of hash chains per proof (arXiv 2403.15233), and
/// colliding-keytag DNSKEY sets multiply signature verification attempts per
/// RRSIG without touching NSEC3 parameters at all (KeyTrap, arXiv
/// 2406.03133). The budget instead bounds *spent* cost: once a single client
/// query has charged more SHA-1 compressions or signature verifications to
/// the [`CostMeter`](crate::cost::CostMeter) than allowed, validation aborts
/// with SERVFAIL and an EDE — the same early-exit shape the 2024 resolver
/// patches adopted.
///
/// Enforcement granularity is the unit of charging: one NSEC3 hash chain or
/// one signature verification. A query can therefore overshoot the
/// compression budget by at most one chain — which is exactly what the
/// iteration clamp bounds, so the two layers compose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkBudget {
    /// Maximum SHA-1 compressions one query may spend on NSEC3 hashing.
    /// `None` = unlimited.
    pub max_compressions: Option<u64>,
    /// Maximum signature verification attempts per query. `None` =
    /// unlimited.
    pub max_signatures: Option<u64>,
}

impl WorkBudget {
    /// No budget: the pre-2024 validator behaviour (and the default, so
    /// existing configurations and pinned outputs are untouched).
    pub fn unlimited() -> Self {
        WorkBudget {
            max_compressions: None,
            max_signatures: None,
        }
    }

    /// The hardened post-CVE shape. 1,000 compressions covers any honest
    /// RFC 9276 proof chain by two orders of magnitude (a compliant
    /// NXDOMAIN proof spends ~6 single-compression chains); 16 signature
    /// attempts covers a cold-cache validation path to a leaf (~8) with
    /// headroom, while a dozen colliding keytags blow through it on the
    /// second RRset.
    pub fn hardened() -> Self {
        WorkBudget {
            max_compressions: Some(1_000),
            max_signatures: Some(16),
        }
    }

    /// True when no limit is set on either axis.
    pub fn is_unlimited(&self) -> bool {
        self.max_compressions.is_none() && self.max_signatures.is_none()
    }
}

impl Default for WorkBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// The pre-RFC 9276 iteration cap of RFC 5155 §10.3: validators accepted
/// up to 150/500/2,500 additional iterations depending on the signing key
/// size (1024/2048/4096 bits). The testbed's `it-2501-expired` zone sits
/// beyond even the largest cap — that is why the paper picked 2,501.
pub fn rfc5155_max_iterations(key_bits: u16) -> u16 {
    if key_bits <= 1024 {
        150
    } else if key_bits <= 2048 {
        500
    } else {
        2500
    }
}

/// Outcome of the iteration-limit check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LimitAction {
    /// Within limits: validate normally.
    Process,
    /// Item 6: treat the response as insecure.
    TreatInsecure,
    /// Item 8: refuse with SERVFAIL.
    ServFail,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_processes() {
        let p = Rfc9276Policy::unlimited();
        assert_eq!(p.action_for(2500, 255), LimitAction::Process);
    }

    #[test]
    fn insecure_threshold_is_exclusive() {
        let p = Rfc9276Policy::insecure_above(150);
        assert_eq!(p.action_for(150, 0), LimitAction::Process);
        assert_eq!(p.action_for(151, 0), LimitAction::TreatInsecure);
    }

    #[test]
    fn servfail_takes_precedence() {
        let mut p = Rfc9276Policy::servfail_above(150);
        p.insecure_above = Some(150);
        assert_eq!(p.action_for(151, 0), LimitAction::ServFail);
        assert_eq!(p.action_for(150, 0), LimitAction::Process);
    }

    #[test]
    fn zero_limit_rejects_any_iterations() {
        // The paper's 418 resolvers SERVFAILing from it-1 behave like a
        // servfail_above(0) policy.
        let p = Rfc9276Policy::servfail_above(0);
        assert_eq!(p.action_for(0, 0), LimitAction::Process);
        assert_eq!(p.action_for(1, 0), LimitAction::ServFail);
    }

    #[test]
    fn rfc5155_caps_by_key_size() {
        assert_eq!(rfc5155_max_iterations(1024), 150);
        assert_eq!(rfc5155_max_iterations(2048), 500);
        assert_eq!(rfc5155_max_iterations(4096), 2500);
        // 2,501 exceeds every cap — the paper's out-of-band test value.
        assert!(2501 > rfc5155_max_iterations(4096));
    }

    #[test]
    fn work_budget_defaults_unlimited() {
        assert!(WorkBudget::default().is_unlimited());
        assert_eq!(WorkBudget::default(), WorkBudget::unlimited());
        assert!(!WorkBudget::hardened().is_unlimited());
    }

    #[test]
    fn salt_limit_applies() {
        let mut p = Rfc9276Policy::insecure_above(150);
        p.max_salt_len = Some(8);
        assert_eq!(p.action_for(0, 9), LimitAction::TreatInsecure);
        assert_eq!(p.action_for(0, 8), LimitAction::Process);
    }
}
