//! Aggressive use of DNSSEC-validated denial (RFC 8198), NSEC3 flavor.
//!
//! A validating resolver that has already verified an NSEC3 closest-
//! encloser proof holds enough information to *synthesize* NXDOMAIN
//! answers for other names in the covered hash intervals — without asking
//! the authoritative server again. This is the standard mitigation for
//! random-subdomain (water-torture) attacks, and the serving driver's
//! negative-cache fast path.
//!
//! # Hot-path shape
//!
//! Each zone's views are kept **sorted by owner hash**, so the two
//! predicates synthesis needs — "does this hash match a cached owner"
//! and "does a cached interval cover this hash" — are binary searches,
//! not linear scans, and [`AggressiveCache::insert`] is a sorted merge
//! instead of an O(views²) `iter().any()` dedup. Because every cached
//! view comes from one *validated* chain, intervals are disjoint and the
//! only candidates that can cover a hash are its sorted predecessor and
//! the (unique, maximal-owner) wrap-around interval.
//!
//! The RFC 9276 connection makes it interesting here: synthesis still
//! costs one NSEC3 hash chain *per candidate closest encloser* per query,
//! so a zone with high iteration counts taxes even the cache path —
//! aggressive caching shifts CVE-2023-50868 work from "per miss" to
//! "per query", it does not remove it. RFC 8198 §5.4 explicitly warns
//! about this trade-off. The `aggressive_cache_cost` test pins it down.

use std::cell::RefCell;
use std::collections::HashMap;

use dns_wire::name::Name;
use dns_zone::nsec3hash::Nsec3Params;

use crate::cost::CostMeter;
use crate::validator::{covers, Nsec3View};

/// One zone's verified denial material; `views` sorted by `owner_hash`.
#[derive(Clone, Debug)]
struct ZoneDenials {
    params: Nsec3Params,
    views: Vec<Nsec3View>,
    expires_micros: u64,
}

/// Binary-search membership: is `hash` a cached owner hash?
fn matches_owner(views: &[Nsec3View], hash: &[u8]) -> bool {
    views
        .binary_search_by(|v| v.owner_hash.as_slice().cmp(hash))
        .is_ok()
}

/// Binary-search coverage: the validated interval strictly containing
/// `hash`, if cached. Intervals from one chain are disjoint, so only two
/// candidates exist — the view with the greatest owner ≤ `hash`, and the
/// wrap-around view (whose owner is the chain maximum, sorting last).
fn covering_view<'a>(views: &'a [Nsec3View], hash: &[u8]) -> Option<&'a Nsec3View> {
    let last = views.last()?;
    let idx = views.partition_point(|v| v.owner_hash.as_slice() <= hash);
    if idx > 0 && covers(&views[idx - 1], hash) {
        return Some(&views[idx - 1]);
    }
    if covers(last, hash) {
        return Some(last);
    }
    None
}

/// Merge `incoming` into the sorted `existing`, dropping duplicate
/// owner hashes — one linear pass, no per-view membership scan.
fn merge_views(existing: &mut Vec<Nsec3View>, incoming: &[Nsec3View]) {
    let mut add = incoming.to_vec();
    sort_views(&mut add);
    let mut out = Vec::with_capacity(existing.len() + add.len());
    let mut a = existing.drain(..).peekable();
    let mut b = add.into_iter().peekable();
    loop {
        match (a.peek(), b.peek()) {
            (Some(x), Some(y)) => match x.owner_hash.cmp(&y.owner_hash) {
                std::cmp::Ordering::Less => out.push(a.next().unwrap()),
                std::cmp::Ordering::Greater => out.push(b.next().unwrap()),
                std::cmp::Ordering::Equal => {
                    out.push(a.next().unwrap());
                    b.next();
                }
            },
            (Some(_), None) => out.push(a.next().unwrap()),
            (None, Some(_)) => out.push(b.next().unwrap()),
            (None, None) => break,
        }
    }
    drop(a);
    *existing = out;
}

/// Sort by owner hash and drop duplicates.
fn sort_views(views: &mut Vec<Nsec3View>) {
    views.sort_by(|x, y| x.owner_hash.cmp(&y.owner_hash));
    views.dedup_by(|x, y| x.owner_hash == y.owner_hash);
}

/// A per-resolver store of *validated* NSEC3 records, usable for
/// RFC 8198 synthesis.
#[derive(Debug, Default)]
pub struct AggressiveCache {
    zones: RefCell<HashMap<Name, ZoneDenials>>,
    synthesized: std::cell::Cell<u64>,
}

impl AggressiveCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Remember verified NSEC3 views for `zone` until `now + ttl`.
    /// Material with different parameters replaces the old set (a zone has
    /// one parameter set at a time).
    pub fn insert(
        &self,
        zone: &Name,
        params: &Nsec3Params,
        views: &[Nsec3View],
        now_micros: u64,
        ttl_secs: u32,
    ) {
        let mut zones = self.zones.borrow_mut();
        let expires_micros = now_micros + ttl_secs as u64 * 1_000_000;
        match zones.get_mut(zone) {
            Some(existing) if existing.params == *params => {
                existing.expires_micros = expires_micros;
                merge_views(&mut existing.views, views);
            }
            _ => {
                let mut sorted = views.to_vec();
                sort_views(&mut sorted);
                zones.insert(
                    zone.clone(),
                    ZoneDenials {
                        params: params.clone(),
                        views: sorted,
                        expires_micros,
                    },
                );
            }
        }
    }

    /// Try to prove `qname` nonexistent from cache alone (RFC 8198 §5.1).
    ///
    /// The closest encloser is found by walking `qname`'s ancestors from
    /// the longest down to `zone` and taking the first whose hash
    /// *matches* a cached owner; the next closer must then fall in a
    /// cached covered interval, as must the encloser's wildcard. Every
    /// candidate costs one hash chain, charged to `meter` — the RFC 8198
    /// §5.4 trade-off: high iteration counts tax even the cache path.
    ///
    /// Opt-out intervals never prove nonexistence (they may span real,
    /// insecurely-delegated names), so a next closer covered only by an
    /// opt-out view refuses to synthesize.
    pub fn synthesize_nxdomain(
        &self,
        zone: &Name,
        qname: &Name,
        now_micros: u64,
        meter: &CostMeter,
    ) -> bool {
        let zones = self.zones.borrow();
        let denials = match zones.get(zone) {
            Some(d) if d.expires_micros > now_micros => d,
            _ => return false,
        };
        if !qname.is_subdomain_of(zone) || qname == zone {
            return false;
        }
        let hash_of = |n: &Name| {
            let h = dns_zone::nsec3hash::nsec3_hash_cached(n, &denials.params);
            meter.add_nsec3_hash(h.compressions);
            h.digest
        };
        // Ancestor chain: chain[0] = qname, …, chain[last] = zone.
        let mut chain = vec![qname.clone()];
        while chain.last().expect("nonempty chain") != zone {
            match chain.last().expect("nonempty chain").parent() {
                Some(p) => chain.push(p),
                None => return false,
            }
        }
        // Longest ancestor with a matched owner hash is the closest
        // encloser. A shallower match can never rescue a failed deeper
        // one: its next closer would be an ancestor of the deeper matched
        // (existing) name, which no validated interval covers.
        for ce in 1..chain.len() {
            let ce_hash = hash_of(&chain[ce]);
            if !matches_owner(&denials.views, &ce_hash) {
                continue;
            }
            let nc_hash = hash_of(&chain[ce - 1]);
            match covering_view(&denials.views, &nc_hash) {
                Some(v) if !v.opt_out => {}
                _ => return false,
            }
            let wildcard = match chain[ce].prepend(b"*") {
                Ok(w) => w,
                Err(_) => return false,
            };
            if covering_view(&denials.views, &hash_of(&wildcard)).is_none() {
                return false;
            }
            self.synthesized.set(self.synthesized.get() + 1);
            return true;
        }
        false
    }

    /// The longest cached (and unexpired) zone that is an ancestor of
    /// `qname`, if any.
    pub fn zone_for(&self, qname: &Name, now_micros: u64) -> Option<Name> {
        self.zones
            .borrow()
            .iter()
            .filter(|(z, d)| {
                d.expires_micros > now_micros && qname.is_subdomain_of(z) && *z != qname
            })
            .max_by_key(|(z, _)| z.label_count())
            .map(|(z, _)| z.clone())
    }

    /// NXDOMAINs synthesized so far.
    pub fn synthesized_count(&self) -> u64 {
        self.synthesized.get()
    }

    /// Number of zones with cached denial material.
    pub fn zone_count(&self) -> usize {
        self.zones.borrow().len()
    }

    /// Number of distinct views cached for `zone` (0 when absent).
    pub fn view_count(&self, zone: &Name) -> usize {
        self.zones
            .borrow()
            .get(zone)
            .map(|d| d.views.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::parse_nsec3_set;
    use dns_wire::name::name;
    use dns_wire::record::Record;
    use dns_wire::rrtype::RrType;
    use dns_zone::denial::nxdomain_proof;
    use dns_zone::signer::{sign_zone, Denial, SignerConfig};
    use dns_zone::Zone;

    const NOW: u32 = 1_710_000_000;

    fn signed(params: Nsec3Params) -> dns_zone::SignedZone {
        let apex = name("agg.example.");
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(
            apex.clone(),
            3600,
            dns_wire::rdata::RData::Soa {
                mname: name("ns1.agg.example."),
                rname: name("h.agg.example."),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1_209_600,
                minimum: 300,
            },
        ))
        .unwrap();
        z.add(Record::new(
            name("www.agg.example."),
            300,
            dns_wire::rdata::RData::A("192.0.2.1".parse().unwrap()),
        ))
        .unwrap();
        sign_zone(
            &z,
            &SignerConfig {
                denial: Denial::Nsec3 {
                    params,
                    opt_out: false,
                },
                ..SignerConfig::standard(&apex, NOW)
            },
        )
        .unwrap()
    }

    /// A zone with interior structure below the apex, for synthesis at a
    /// closest encloser that is *not* the apex.
    fn signed_deep() -> dns_zone::SignedZone {
        let apex = name("agg.example.");
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(
            apex.clone(),
            3600,
            dns_wire::rdata::RData::Soa {
                mname: name("ns1.agg.example."),
                rname: name("h.agg.example."),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1_209_600,
                minimum: 300,
            },
        ))
        .unwrap();
        z.add(Record::new(
            name("host.dept.agg.example."),
            300,
            dns_wire::rdata::RData::A("192.0.2.2".parse().unwrap()),
        ))
        .unwrap();
        sign_zone(
            &z,
            &SignerConfig {
                denial: Denial::Nsec3 {
                    params: Nsec3Params::rfc9276(),
                    opt_out: false,
                },
                ..SignerConfig::standard(&apex, NOW)
            },
        )
        .unwrap()
    }

    fn harvest(z: &dns_zone::SignedZone, qname: &Name) -> (Nsec3Params, Vec<Nsec3View>) {
        let proof = nxdomain_proof(z, qname).unwrap();
        let nsec3s: Vec<&Record> = proof
            .records
            .iter()
            .filter(|r| r.rrtype() == RrType::NSEC3)
            .collect();
        parse_nsec3_set(&nsec3s).unwrap()
    }

    #[test]
    fn synthesizes_from_one_observed_proof() {
        let z = signed(Nsec3Params::rfc9276());
        let apex = name("agg.example.");
        let (params, views) = harvest(&z, &name("first-miss.agg.example."));
        let cache = AggressiveCache::new();
        cache.insert(&apex, &params, &views, 0, 300);
        let meter = CostMeter::new();
        // A *different* nonexistent name: covered by the same chain
        // (3 names in the zone → one proof covers most of hash space).
        let hit = cache.synthesize_nxdomain(&apex, &name("second-miss.agg.example."), 1, &meter);
        assert!(hit, "synthesis should succeed from the cached chain");
        assert_eq!(cache.synthesized_count(), 1);
        assert!(meter.nsec3_hashes() >= 3, "synthesis still hashes");
    }

    #[test]
    fn synthesizes_below_an_interior_closest_encloser() {
        // The closest encloser is dept.agg.example (an empty non-terminal
        // on the chain), two labels below the zone apex — the case the
        // apex-only synthesizer used to forward upstream.
        let z = signed_deep();
        let apex = name("agg.example.");
        let (params, views) = harvest(&z, &name("ghost.dept.agg.example."));
        let cache = AggressiveCache::new();
        cache.insert(&apex, &params, &views, 0, 300);
        let meter = CostMeter::new();
        let hit = cache.synthesize_nxdomain(&apex, &name("phantom.dept.agg.example."), 1, &meter);
        assert!(hit, "interior closest encloser must synthesize");
        // And existing names below that encloser are never denied.
        assert!(!cache.synthesize_nxdomain(&apex, &name("host.dept.agg.example."), 1, &meter));
    }

    #[test]
    fn does_not_synthesize_for_existing_names() {
        let z = signed(Nsec3Params::rfc9276());
        let apex = name("agg.example.");
        let (params, views) = harvest(&z, &name("miss.agg.example."));
        let cache = AggressiveCache::new();
        cache.insert(&apex, &params, &views, 0, 300);
        let meter = CostMeter::new();
        // www exists: its hash matches an owner, never covered.
        assert!(!cache.synthesize_nxdomain(&apex, &name("www.agg.example."), 1, &meter));
    }

    #[test]
    fn expires_with_ttl() {
        let z = signed(Nsec3Params::rfc9276());
        let apex = name("agg.example.");
        let (params, views) = harvest(&z, &name("miss.agg.example."));
        let cache = AggressiveCache::new();
        cache.insert(&apex, &params, &views, 0, 300);
        let meter = CostMeter::new();
        assert!(!cache.synthesize_nxdomain(&apex, &name("x.agg.example."), 301_000_000, &meter));
    }

    #[test]
    fn synthesis_cost_scales_with_iterations() {
        // The RFC 8198 §5.4 warning quantified: synthesis from cache costs
        // (iterations + 1) × 3 compressions per query.
        let cheap = {
            let z = signed(Nsec3Params::rfc9276());
            let apex = name("agg.example.");
            let (params, views) = harvest(&z, &name("m.agg.example."));
            let cache = AggressiveCache::new();
            cache.insert(&apex, &params, &views, 0, 300);
            let meter = CostMeter::new();
            cache.synthesize_nxdomain(&apex, &name("q.agg.example."), 1, &meter);
            meter.sha1_compressions()
        };
        let costly = {
            let z = signed(Nsec3Params::new(150, vec![]));
            let apex = name("agg.example.");
            let (params, views) = harvest(&z, &name("m.agg.example."));
            let cache = AggressiveCache::new();
            cache.insert(&apex, &params, &views, 0, 300);
            let meter = CostMeter::new();
            cache.synthesize_nxdomain(&apex, &name("q.agg.example."), 1, &meter);
            meter.sha1_compressions()
        };
        assert!(costly >= cheap * 100, "{costly} vs {cheap}");
    }

    #[test]
    fn accumulates_views_for_same_params() {
        let z = signed(Nsec3Params::rfc9276());
        let apex = name("agg.example.");
        let (params, v1) = harvest(&z, &name("a-miss.agg.example."));
        let (_, v2) = harvest(&z, &name("zz-miss.agg.example."));
        let cache = AggressiveCache::new();
        cache.insert(&apex, &params, &v1, 0, 300);
        cache.insert(&apex, &params, &v2, 0, 300);
        assert_eq!(cache.zone_count(), 1);
        // The merge keeps one copy per owner hash, never fewer views
        // than either proof alone contributed.
        let merged = cache.view_count(&apex);
        assert!(merged >= v1.len().max(v2.len()), "merged {merged} views");
        // Re-inserting the same material is idempotent.
        cache.insert(&apex, &params, &v1, 0, 300);
        assert_eq!(cache.view_count(&apex), merged);
        // Changing params replaces the set.
        cache.insert(&apex, &Nsec3Params::new(5, vec![]), &v1, 0, 300);
        assert_eq!(cache.zone_count(), 1);
        assert_eq!(cache.view_count(&apex), v1.len());
    }

    #[test]
    fn sorted_probes_agree_with_linear_scans() {
        // Differential check of the binary-search hot path against the
        // obvious linear predicates, across every inserted chain hash
        // and a spread of synthetic probes.
        let z = signed_deep();
        let apex = name("agg.example.");
        let (params, views) = {
            let (p, mut v) = harvest(&z, &name("no1.agg.example."));
            let (_, v2) = harvest(&z, &name("zz.dept.agg.example."));
            v.extend(v2);
            (p, v)
        };
        let cache = AggressiveCache::new();
        cache.insert(&apex, &params, &views, 0, 300);
        let zones = cache.zones.borrow();
        let sorted = &zones.get(&apex).unwrap().views;
        assert!(
            sorted.windows(2).all(|w| w[0].owner_hash < w[1].owner_hash),
            "views must be strictly sorted by owner hash"
        );
        let mut probes: Vec<Vec<u8>> = sorted.iter().map(|v| v.owner_hash.clone()).collect();
        for step in 0..=255u8 {
            probes.push(vec![step; 20]);
        }
        for h in &probes {
            let lin_match = sorted.iter().any(|v| v.owner_hash == *h);
            assert_eq!(matches_owner(sorted, h), lin_match);
            let lin_cover = sorted.iter().find(|v| covers(v, h));
            assert_eq!(
                covering_view(sorted, h).map(|v| &v.owner_hash),
                lin_cover.map(|v| &v.owner_hash)
            );
        }
    }
}
