//! Aggressive use of DNSSEC-validated denial (RFC 8198), NSEC3 flavor.
//!
//! A validating resolver that has already verified an NSEC3 closest-
//! encloser proof holds enough information to *synthesize* NXDOMAIN
//! answers for other names in the covered hash intervals — without asking
//! the authoritative server again. This is the standard mitigation for
//! random-subdomain (water-torture) attacks.
//!
//! The RFC 9276 connection makes it interesting here: synthesis still
//! costs one NSEC3 hash chain *per candidate closest encloser* per query,
//! so a zone with high iteration counts taxes even the cache path —
//! aggressive caching shifts CVE-2023-50868 work from "per miss" to
//! "per query", it does not remove it. RFC 8198 §5.4 explicitly warns
//! about this trade-off. The `aggressive_cache_cost` test pins it down.

use std::cell::RefCell;
use std::collections::HashMap;

use dns_wire::name::Name;
use dns_zone::nsec3hash::Nsec3Params;

use crate::cost::CostMeter;
use crate::validator::{covers, Nsec3View};

/// One zone's verified denial material.
#[derive(Clone, Debug)]
struct ZoneDenials {
    params: Nsec3Params,
    views: Vec<Nsec3View>,
    expires_micros: u64,
}

/// A per-resolver store of *validated* NSEC3 records, usable for
/// RFC 8198 synthesis.
#[derive(Debug, Default)]
pub struct AggressiveCache {
    zones: RefCell<HashMap<Name, ZoneDenials>>,
    synthesized: std::cell::Cell<u64>,
}

impl AggressiveCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Remember verified NSEC3 views for `zone` until `now + ttl`.
    /// Material with different parameters replaces the old set (a zone has
    /// one parameter set at a time).
    pub fn insert(
        &self,
        zone: &Name,
        params: &Nsec3Params,
        views: &[Nsec3View],
        now_micros: u64,
        ttl_secs: u32,
    ) {
        let mut zones = self.zones.borrow_mut();
        let expires_micros = now_micros + ttl_secs as u64 * 1_000_000;
        match zones.get_mut(zone) {
            Some(existing) if existing.params == *params => {
                existing.expires_micros = expires_micros;
                for v in views {
                    if !existing.views.iter().any(|e| e.owner_hash == v.owner_hash) {
                        existing.views.push(v.clone());
                    }
                }
            }
            _ => {
                zones.insert(
                    zone.clone(),
                    ZoneDenials {
                        params: params.clone(),
                        views: views.to_vec(),
                        expires_micros,
                    },
                );
            }
        }
    }

    /// Try to prove `qname` nonexistent from cache alone (RFC 8198 §5.1
    /// restricted to the closest-encloser = zone-apex case, the one a
    /// cache can decide without knowing interior names). Charges hash
    /// work to `meter`. Returns `true` when an NXDOMAIN can be
    /// synthesized.
    pub fn synthesize_nxdomain(
        &self,
        zone: &Name,
        qname: &Name,
        now_micros: u64,
        meter: &CostMeter,
    ) -> bool {
        let zones = self.zones.borrow();
        let denials = match zones.get(zone) {
            Some(d) if d.expires_micros > now_micros => d,
            _ => return false,
        };
        if !qname.is_subdomain_of(zone) || qname == zone {
            return false;
        }
        // Synthesis needs: apex matched (closest encloser), the next
        // closer covered, and the apex wildcard covered.
        let hash_of = |n: &Name| {
            let h = dns_zone::nsec3hash::nsec3_hash_cached(n, &denials.params);
            meter.add_nsec3_hash(h.compressions);
            h.digest
        };
        let apex_hash = hash_of(zone);
        if !denials.views.iter().any(|v| v.owner_hash == apex_hash) {
            return false;
        }
        // Next closer: the ancestor of qname one label below the apex.
        let mut next_closer = qname.clone();
        while next_closer.parent().as_ref() != Some(zone) {
            next_closer = match next_closer.parent() {
                Some(p) => p,
                None => return false,
            };
        }
        let nc_hash = hash_of(&next_closer);
        if !denials.views.iter().any(|v| covers(v, &nc_hash)) {
            return false;
        }
        let wildcard = match zone.prepend(b"*") {
            Ok(w) => w,
            Err(_) => return false,
        };
        let wc_hash = hash_of(&wildcard);
        if !denials.views.iter().any(|v| covers(v, &wc_hash)) {
            return false;
        }
        self.synthesized.set(self.synthesized.get() + 1);
        true
    }

    /// The longest cached (and unexpired) zone that is an ancestor of
    /// `qname`, if any.
    pub fn zone_for(&self, qname: &Name, now_micros: u64) -> Option<Name> {
        self.zones
            .borrow()
            .iter()
            .filter(|(z, d)| {
                d.expires_micros > now_micros && qname.is_subdomain_of(z) && *z != qname
            })
            .max_by_key(|(z, _)| z.label_count())
            .map(|(z, _)| z.clone())
    }

    /// NXDOMAINs synthesized so far.
    pub fn synthesized_count(&self) -> u64 {
        self.synthesized.get()
    }

    /// Number of zones with cached denial material.
    pub fn zone_count(&self) -> usize {
        self.zones.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::parse_nsec3_set;
    use dns_wire::name::name;
    use dns_wire::record::Record;
    use dns_wire::rrtype::RrType;
    use dns_zone::denial::nxdomain_proof;
    use dns_zone::signer::{sign_zone, Denial, SignerConfig};
    use dns_zone::Zone;

    const NOW: u32 = 1_710_000_000;

    fn signed(params: Nsec3Params) -> dns_zone::SignedZone {
        let apex = name("agg.example.");
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(
            apex.clone(),
            3600,
            dns_wire::rdata::RData::Soa {
                mname: name("ns1.agg.example."),
                rname: name("h.agg.example."),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1_209_600,
                minimum: 300,
            },
        ))
        .unwrap();
        z.add(Record::new(
            name("www.agg.example."),
            300,
            dns_wire::rdata::RData::A("192.0.2.1".parse().unwrap()),
        ))
        .unwrap();
        sign_zone(
            &z,
            &SignerConfig {
                denial: Denial::Nsec3 {
                    params,
                    opt_out: false,
                },
                ..SignerConfig::standard(&apex, NOW)
            },
        )
        .unwrap()
    }

    fn harvest(z: &dns_zone::SignedZone, qname: &Name) -> (Nsec3Params, Vec<Nsec3View>) {
        let proof = nxdomain_proof(z, qname).unwrap();
        let nsec3s: Vec<&Record> = proof
            .records
            .iter()
            .filter(|r| r.rrtype() == RrType::NSEC3)
            .collect();
        parse_nsec3_set(&nsec3s).unwrap()
    }

    #[test]
    fn synthesizes_from_one_observed_proof() {
        let z = signed(Nsec3Params::rfc9276());
        let apex = name("agg.example.");
        let (params, views) = harvest(&z, &name("first-miss.agg.example."));
        let cache = AggressiveCache::new();
        cache.insert(&apex, &params, &views, 0, 300);
        let meter = CostMeter::new();
        // A *different* nonexistent name: covered by the same chain
        // (3 names in the zone → one proof covers most of hash space).
        let hit = cache.synthesize_nxdomain(&apex, &name("second-miss.agg.example."), 1, &meter);
        assert!(hit, "synthesis should succeed from the cached chain");
        assert_eq!(cache.synthesized_count(), 1);
        assert!(meter.nsec3_hashes() >= 3, "synthesis still hashes");
    }

    #[test]
    fn does_not_synthesize_for_existing_names() {
        let z = signed(Nsec3Params::rfc9276());
        let apex = name("agg.example.");
        let (params, views) = harvest(&z, &name("miss.agg.example."));
        let cache = AggressiveCache::new();
        cache.insert(&apex, &params, &views, 0, 300);
        let meter = CostMeter::new();
        // www exists: its hash matches an owner, never covered.
        assert!(!cache.synthesize_nxdomain(&apex, &name("www.agg.example."), 1, &meter));
    }

    #[test]
    fn expires_with_ttl() {
        let z = signed(Nsec3Params::rfc9276());
        let apex = name("agg.example.");
        let (params, views) = harvest(&z, &name("miss.agg.example."));
        let cache = AggressiveCache::new();
        cache.insert(&apex, &params, &views, 0, 300);
        let meter = CostMeter::new();
        assert!(!cache.synthesize_nxdomain(&apex, &name("x.agg.example."), 301_000_000, &meter));
    }

    #[test]
    fn synthesis_cost_scales_with_iterations() {
        // The RFC 8198 §5.4 warning quantified: synthesis from cache costs
        // (iterations + 1) × 3 compressions per query.
        let cheap = {
            let z = signed(Nsec3Params::rfc9276());
            let apex = name("agg.example.");
            let (params, views) = harvest(&z, &name("m.agg.example."));
            let cache = AggressiveCache::new();
            cache.insert(&apex, &params, &views, 0, 300);
            let meter = CostMeter::new();
            cache.synthesize_nxdomain(&apex, &name("q.agg.example."), 1, &meter);
            meter.sha1_compressions()
        };
        let costly = {
            let z = signed(Nsec3Params::new(150, vec![]));
            let apex = name("agg.example.");
            let (params, views) = harvest(&z, &name("m.agg.example."));
            let cache = AggressiveCache::new();
            cache.insert(&apex, &params, &views, 0, 300);
            let meter = CostMeter::new();
            cache.synthesize_nxdomain(&apex, &name("q.agg.example."), 1, &meter);
            meter.sha1_compressions()
        };
        assert!(costly >= cheap * 100, "{costly} vs {cheap}");
    }

    #[test]
    fn accumulates_views_for_same_params() {
        let z = signed(Nsec3Params::rfc9276());
        let apex = name("agg.example.");
        let (params, v1) = harvest(&z, &name("a-miss.agg.example."));
        let (_, v2) = harvest(&z, &name("zz-miss.agg.example."));
        let cache = AggressiveCache::new();
        cache.insert(&apex, &params, &v1, 0, 300);
        cache.insert(&apex, &params, &v2, 0, 300);
        assert_eq!(cache.zone_count(), 1);
        // Changing params replaces the set.
        cache.insert(&apex, &Nsec3Params::new(5, vec![]), &v1, 0, 300);
        assert_eq!(cache.zone_count(), 1);
    }
}
