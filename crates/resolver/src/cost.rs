//! Validation cost accounting — the measurement instrument for
//! CVE-2023-50868.
//!
//! The CVE is an algorithmic-complexity attack: a malicious (or merely
//! non-compliant) zone with high NSEC3 iteration counts makes a validating
//! resolver spend `O(labels × iterations)` SHA-1 compressions per negative
//! response. Gruza et al. (WOOT '24) measured up to a 72× CPU instruction
//! blow-up; we reproduce the scaling law by counting the compressions
//! directly.

use std::cell::Cell;

/// Accumulated work for one resolution (or one experiment).
#[derive(Clone, Debug, Default)]
pub struct CostMeter {
    sha1_compressions: Cell<u64>,
    nsec3_hashes: Cell<u64>,
    signatures_verified: Cell<u64>,
    messages_sent: Cell<u64>,
    timeouts: Cell<u64>,
    retries: Cell<u64>,
}

impl CostMeter {
    /// A zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the cost of one NSEC3 hash chain.
    pub fn add_nsec3_hash(&self, compressions: u64) {
        self.sha1_compressions
            .set(self.sha1_compressions.get() + compressions);
        self.nsec3_hashes.set(self.nsec3_hashes.get() + 1);
    }

    /// Record one signature verification.
    pub fn add_signature(&self) {
        self.signatures_verified
            .set(self.signatures_verified.get() + 1);
    }

    /// Record one network message sent.
    pub fn add_message(&self) {
        self.messages_sent.set(self.messages_sent.get() + 1);
    }

    /// Record one upstream exchange that ended in silence (all retries
    /// exhausted without a usable reply).
    pub fn add_timeout(&self) {
        self.timeouts.set(self.timeouts.get() + 1);
    }

    /// Record `n` extra attempts beyond the first for one exchange.
    pub fn add_retries(&self, n: u64) {
        self.retries.set(self.retries.get() + n);
    }

    /// Total SHA-1 compressions spent on NSEC3 hashing.
    pub fn sha1_compressions(&self) -> u64 {
        self.sha1_compressions.get()
    }

    /// Number of full NSEC3 hash chains computed.
    pub fn nsec3_hashes(&self) -> u64 {
        self.nsec3_hashes.get()
    }

    /// Signature verifications performed.
    pub fn signatures_verified(&self) -> u64 {
        self.signatures_verified.get()
    }

    /// Messages sent during resolution.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent.get()
    }

    /// Upstream exchanges that timed out entirely.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.get()
    }

    /// Extra wire attempts beyond the first, summed over exchanges.
    pub fn retries(&self) -> u64 {
        self.retries.get()
    }

    /// Zero every counter.
    pub fn reset(&self) {
        self.sha1_compressions.set(0);
        self.nsec3_hashes.set(0);
        self.signatures_verified.set(0);
        self.messages_sent.set(0);
        self.timeouts.set(0);
        self.retries.set(0);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            sha1_compressions: self.sha1_compressions.get(),
            nsec3_hashes: self.nsec3_hashes.get(),
            signatures_verified: self.signatures_verified.get(),
            messages_sent: self.messages_sent.get(),
            timeouts: self.timeouts.get(),
            retries: self.retries.get(),
        }
    }
}

/// Immutable copy of a [`CostMeter`]'s counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct CostSnapshot {
    /// SHA-1 compression-function invocations for NSEC3 hashing.
    pub sha1_compressions: u64,
    /// NSEC3 hash chains computed.
    pub nsec3_hashes: u64,
    /// Signature verifications.
    pub signatures_verified: u64,
    /// Network messages sent.
    pub messages_sent: u64,
    /// Upstream exchanges that ended in silence (all retries exhausted).
    /// Zero on a fault-free network — scanners use this to tell genuine
    /// SERVFAIL verdicts apart from probe loss.
    pub timeouts: u64,
    /// Extra wire attempts beyond the first, summed over exchanges.
    pub retries: u64,
}

impl CostSnapshot {
    /// Difference vs an earlier snapshot.
    pub fn since(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            sha1_compressions: self.sha1_compressions - earlier.sha1_compressions,
            nsec3_hashes: self.nsec3_hashes - earlier.nsec3_hashes,
            signatures_verified: self.signatures_verified - earlier.signatures_verified,
            messages_sent: self.messages_sent - earlier.messages_sent,
            timeouts: self.timeouts - earlier.timeouts,
            retries: self.retries - earlier.retries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_resets() {
        let m = CostMeter::new();
        m.add_nsec3_hash(101);
        m.add_nsec3_hash(101);
        m.add_signature();
        m.add_message();
        assert_eq!(m.sha1_compressions(), 202);
        assert_eq!(m.nsec3_hashes(), 2);
        assert_eq!(m.signatures_verified(), 1);
        assert_eq!(m.messages_sent(), 1);
        m.reset();
        assert_eq!(m.snapshot(), CostSnapshot::default());
    }

    #[test]
    fn snapshot_diff() {
        let m = CostMeter::new();
        m.add_nsec3_hash(10);
        let a = m.snapshot();
        m.add_nsec3_hash(5);
        let b = m.snapshot();
        let d = b.since(&a);
        assert_eq!(d.sha1_compressions, 5);
        assert_eq!(d.nsec3_hashes, 1);
    }
}
