//! Validation cost accounting — the measurement instrument for
//! CVE-2023-50868.
//!
//! The CVE is an algorithmic-complexity attack: a malicious (or merely
//! non-compliant) zone with high NSEC3 iteration counts makes a validating
//! resolver spend `O(labels × iterations)` SHA-1 compressions per negative
//! response. Gruza et al. (WOOT '24) measured up to a 72× CPU instruction
//! blow-up; we reproduce the scaling law by counting the compressions
//! directly.

use std::cell::Cell;

use crate::policy::WorkBudget;

/// Accumulated work for one resolution (or one experiment).
///
/// Besides passive accounting the meter can be *armed* with a
/// [`WorkBudget`]: arming converts the budget's per-query allowances into
/// absolute thresholds relative to the current counters, and
/// [`budget_exhausted`](CostMeter::budget_exhausted) reports when spending
/// has reached either threshold. The counters themselves are never clamped —
/// the meter stays an exact instrument; enforcement (aborting validation)
/// is the caller's job.
#[derive(Clone, Debug, Default)]
pub struct CostMeter {
    sha1_compressions: Cell<u64>,
    nsec3_hashes: Cell<u64>,
    signatures_verified: Cell<u64>,
    messages_sent: Cell<u64>,
    timeouts: Cell<u64>,
    retries: Cell<u64>,
    /// Absolute compression threshold while a budget is armed.
    budget_compressions: Cell<Option<u64>>,
    /// Absolute signature-verification threshold while a budget is armed.
    budget_signatures: Cell<Option<u64>>,
}

impl CostMeter {
    /// A zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the cost of one NSEC3 hash chain.
    pub fn add_nsec3_hash(&self, compressions: u64) {
        self.sha1_compressions
            .set(self.sha1_compressions.get() + compressions);
        self.nsec3_hashes.set(self.nsec3_hashes.get() + 1);
    }

    /// Record one signature verification.
    pub fn add_signature(&self) {
        self.signatures_verified
            .set(self.signatures_verified.get() + 1);
    }

    /// Record one network message sent.
    pub fn add_message(&self) {
        self.messages_sent.set(self.messages_sent.get() + 1);
    }

    /// Record one upstream exchange that ended in silence (all retries
    /// exhausted without a usable reply).
    pub fn add_timeout(&self) {
        self.timeouts.set(self.timeouts.get() + 1);
    }

    /// Record `n` extra attempts beyond the first for one exchange.
    pub fn add_retries(&self, n: u64) {
        self.retries.set(self.retries.get() + n);
    }

    /// Total SHA-1 compressions spent on NSEC3 hashing.
    pub fn sha1_compressions(&self) -> u64 {
        self.sha1_compressions.get()
    }

    /// Number of full NSEC3 hash chains computed.
    pub fn nsec3_hashes(&self) -> u64 {
        self.nsec3_hashes.get()
    }

    /// Signature verifications performed.
    pub fn signatures_verified(&self) -> u64 {
        self.signatures_verified.get()
    }

    /// Messages sent during resolution.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent.get()
    }

    /// Upstream exchanges that timed out entirely.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.get()
    }

    /// Extra wire attempts beyond the first, summed over exchanges.
    pub fn retries(&self) -> u64 {
        self.retries.get()
    }

    /// Arm `budget` for the work starting now: thresholds are the current
    /// counters plus the budget's allowances. An unlimited budget disarms.
    pub fn arm_budget(&self, budget: &WorkBudget) {
        self.budget_compressions.set(
            budget
                .max_compressions
                .map(|n| self.sha1_compressions.get().saturating_add(n)),
        );
        self.budget_signatures.set(
            budget
                .max_signatures
                .map(|n| self.signatures_verified.get().saturating_add(n)),
        );
    }

    /// Remove any armed budget.
    pub fn disarm_budget(&self) {
        self.budget_compressions.set(None);
        self.budget_signatures.set(None);
    }

    /// True when an armed budget's allowance is used up on either axis.
    /// Callers check this *before* the next unit of work, so a query
    /// overshoots by at most one hash chain or one verification.
    pub fn budget_exhausted(&self) -> bool {
        let over_compressions = self
            .budget_compressions
            .get()
            .is_some_and(|limit| self.sha1_compressions.get() >= limit);
        let over_signatures = self
            .budget_signatures
            .get()
            .is_some_and(|limit| self.signatures_verified.get() >= limit);
        over_compressions || over_signatures
    }

    /// Zero every counter (and disarm any budget — its thresholds were
    /// absolute and would be stale).
    pub fn reset(&self) {
        self.sha1_compressions.set(0);
        self.nsec3_hashes.set(0);
        self.signatures_verified.set(0);
        self.messages_sent.set(0);
        self.timeouts.set(0);
        self.retries.set(0);
        self.disarm_budget();
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            sha1_compressions: self.sha1_compressions.get(),
            nsec3_hashes: self.nsec3_hashes.get(),
            signatures_verified: self.signatures_verified.get(),
            messages_sent: self.messages_sent.get(),
            timeouts: self.timeouts.get(),
            retries: self.retries.get(),
        }
    }
}

/// Immutable copy of a [`CostMeter`]'s counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct CostSnapshot {
    /// SHA-1 compression-function invocations for NSEC3 hashing.
    pub sha1_compressions: u64,
    /// NSEC3 hash chains computed.
    pub nsec3_hashes: u64,
    /// Signature verifications.
    pub signatures_verified: u64,
    /// Network messages sent.
    pub messages_sent: u64,
    /// Upstream exchanges that ended in silence (all retries exhausted).
    /// Zero on a fault-free network — scanners use this to tell genuine
    /// SERVFAIL verdicts apart from probe loss.
    pub timeouts: u64,
    /// Extra wire attempts beyond the first, summed over exchanges.
    pub retries: u64,
}

impl CostSnapshot {
    /// Difference vs an earlier snapshot.
    pub fn since(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            sha1_compressions: self.sha1_compressions - earlier.sha1_compressions,
            nsec3_hashes: self.nsec3_hashes - earlier.nsec3_hashes,
            signatures_verified: self.signatures_verified - earlier.signatures_verified,
            messages_sent: self.messages_sent - earlier.messages_sent,
            timeouts: self.timeouts - earlier.timeouts,
            retries: self.retries - earlier.retries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_resets() {
        let m = CostMeter::new();
        m.add_nsec3_hash(101);
        m.add_nsec3_hash(101);
        m.add_signature();
        m.add_message();
        assert_eq!(m.sha1_compressions(), 202);
        assert_eq!(m.nsec3_hashes(), 2);
        assert_eq!(m.signatures_verified(), 1);
        assert_eq!(m.messages_sent(), 1);
        m.reset();
        assert_eq!(m.snapshot(), CostSnapshot::default());
    }

    #[test]
    fn budget_arming_is_relative_to_current_spend() {
        let m = CostMeter::new();
        m.add_nsec3_hash(500);
        m.arm_budget(&WorkBudget {
            max_compressions: Some(100),
            max_signatures: Some(2),
        });
        assert!(!m.budget_exhausted());
        m.add_nsec3_hash(99);
        assert!(!m.budget_exhausted(), "599 < 600 threshold");
        m.add_nsec3_hash(1);
        assert!(m.budget_exhausted(), "600 >= 600 threshold");
        // Counters keep counting past the threshold: exact instrument.
        m.add_nsec3_hash(40);
        assert_eq!(m.sha1_compressions(), 640);
        m.disarm_budget();
        assert!(!m.budget_exhausted());
    }

    #[test]
    fn budget_signature_axis_and_unlimited() {
        let m = CostMeter::new();
        m.arm_budget(&WorkBudget::unlimited());
        m.add_nsec3_hash(1_000_000);
        for _ in 0..1000 {
            m.add_signature();
        }
        assert!(!m.budget_exhausted(), "unlimited budget never exhausts");
        m.arm_budget(&WorkBudget {
            max_compressions: None,
            max_signatures: Some(3),
        });
        m.add_signature();
        m.add_signature();
        assert!(!m.budget_exhausted());
        m.add_signature();
        assert!(m.budget_exhausted());
        m.reset();
        assert!(!m.budget_exhausted(), "reset disarms");
    }

    #[test]
    fn snapshot_diff() {
        let m = CostMeter::new();
        m.add_nsec3_hash(10);
        let a = m.snapshot();
        m.add_nsec3_hash(5);
        let b = m.snapshot();
        let d = b.since(&a);
        assert_eq!(d.sha1_compressions, 5);
        assert_eq!(d.nsec3_hashes, 1);
    }
}
