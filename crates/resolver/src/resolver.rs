//! The validating recursive resolver.
//!
//! Implements full iterative resolution over the simulated network —
//! root hints, referrals with glue, DS/DNSKEY chain building — and DNSSEC
//! validation with the RFC 9276 policy knobs applied exactly where real
//! resolvers apply them (before or while verifying NSEC3 proofs).

use std::cell::RefCell;
use std::net::IpAddr;

use dns_crypto::sha256::sha256;
use dns_wire::edns::{EdeCode, Edns};
use dns_wire::message::{unframe_tcp, Message};
use dns_wire::name::Name;
use dns_wire::rdata::RData;
use dns_wire::record::Record;
use dns_wire::rrtype::{Rcode, RrType};
use dns_zone::nsec3hash::Nsec3Params;
use netsim::{Network, Node, Outcome, RetryPolicy};

use crate::aggressive::AggressiveCache;
use crate::cache::TtlCache;
use crate::cost::{CostMeter, CostSnapshot};
use crate::delegation::{Delegation, DelegationCache};
use crate::policy::{LimitAction, Rfc9276Policy, WorkBudget};
use crate::validator::{
    self, parse_nsec3_set, validate_rrset, verify_nodata, verify_nxdomain,
    verify_wildcard_expansion, ValidationError, ZoneKeys,
};

/// A trust anchor: the DS-style digest of a zone's KSK. Anchors are
/// matched per zone apex ([`ResolverConfig::trust_anchors`] may hold
/// several — the root plus islands of trust at deeper cuts), and an
/// anchor configured for a cut takes precedence over the parent's DS
/// set, which is what makes mis-anchored zones observable.
#[derive(Clone, Debug)]
pub struct TrustAnchor {
    /// The anchored zone apex (the root, in most experiments here).
    pub zone: Name,
    /// Expected key tag.
    pub key_tag: u16,
    /// SHA-256 digest over `owner | DNSKEY rdata` (digest type 2).
    pub digest: Vec<u8>,
}

/// Resolver configuration.
#[derive(Clone, Debug)]
pub struct ResolverConfig {
    /// The egress address queries are sent from (also the service address).
    pub addr: IpAddr,
    /// Root server addresses.
    pub root_hints: Vec<IpAddr>,
    /// Trust anchors (empty = non-validating).
    pub trust_anchors: Vec<TrustAnchor>,
    /// Whether DNSSEC validation is enabled at all.
    pub validate: bool,
    /// The RFC 9276 policy.
    pub policy: Rfc9276Policy,
    /// Wall-clock now (epoch seconds) for temporal signature checks.
    pub now: u32,
    /// Per-upstream-query retry schedule (attempts, backoff, budget).
    /// [`RetryPolicy::fixed`] reproduces the legacy flat retry loop.
    pub retry: RetryPolicy,
    /// Check iteration limits before verifying NSEC3 RRSIGs (the cheap
    /// order everyone implements). `false` is the ablation arm: full
    /// signature verification before the limit check.
    pub check_limits_first: bool,
    /// Answer/key cache capacity (entries); 0 disables caching.
    pub cache_size: usize,
    /// RFC 8198 aggressive use of validated NSEC3: synthesize NXDOMAINs
    /// from cached, verified denial chains (costs hashing per query; see
    /// `crate::aggressive`).
    pub aggressive_nsec3: bool,
    /// Cache referral state per zone cut ([`DelegationCache`]) so warm
    /// resolutions restart at the deepest known cut instead of the root
    /// hints. Off by default so every calibrated probe driver keeps its
    /// historical query pattern; the serving and chain-study drivers
    /// turn it on.
    pub delegation_cache: bool,
    /// 0x20 case randomization (dns-0x20): encode the qname of upstream
    /// queries with per-query random case and reject responses that do not
    /// echo it — the classic anti-spoofing hardening the paper's Kaminsky
    /// citation motivates.
    pub case_randomization: bool,
    /// QNAME minimization (RFC 9156): expose only one extra label per
    /// zone while walking the delegation tree. Off by default so the
    /// calibrated experiments keep the classic query pattern.
    pub qname_minimization: bool,
    /// Per-client-query validator work budget (compressions + signature
    /// attempts). Armed for the span of one `resolve` including CNAME
    /// chasing and key fetches; unlimited by default so every calibrated
    /// experiment is untouched.
    pub budget: WorkBudget,
}

impl ResolverConfig {
    /// A validating resolver with the given address, hints and anchor.
    pub fn validating(addr: IpAddr, root_hints: Vec<IpAddr>, anchor: TrustAnchor) -> Self {
        ResolverConfig {
            addr,
            root_hints,
            trust_anchors: vec![anchor],
            validate: true,
            policy: Rfc9276Policy::unlimited(),
            now: 0,
            retry: RetryPolicy::fixed(2),
            check_limits_first: true,
            cache_size: 4096,
            aggressive_nsec3: false,
            delegation_cache: false,
            case_randomization: true,
            qname_minimization: false,
            budget: WorkBudget::unlimited(),
        }
    }

    /// A non-validating resolver.
    pub fn stub(addr: IpAddr, root_hints: Vec<IpAddr>) -> Self {
        ResolverConfig {
            addr,
            root_hints,
            trust_anchors: Vec::new(),
            validate: false,
            policy: Rfc9276Policy::unlimited(),
            now: 0,
            retry: RetryPolicy::fixed(2),
            check_limits_first: true,
            cache_size: 4096,
            aggressive_nsec3: false,
            delegation_cache: false,
            case_randomization: true,
            qname_minimization: false,
            budget: WorkBudget::unlimited(),
        }
    }
}

/// The result the resolver hands to its client.
#[derive(Clone, Debug)]
pub struct ResolveOutcome {
    /// Response code.
    pub rcode: Rcode,
    /// Whether the data was DNSSEC-authenticated (AD bit).
    pub authenticated: bool,
    /// Answer records.
    pub answers: Vec<Record>,
    /// Authority-section records relayed to the client (SOA, NSEC/NSEC3
    /// proofs) — the zdns-style census reads NSEC3 parameters from here.
    pub authorities: Vec<Record>,
    /// Extended DNS error attached, if any.
    pub ede: Option<(EdeCode, String)>,
    /// The SERVFAIL was a work-budget abort, not a verdict on the data:
    /// experiment drivers tally these separately so degraded queries never
    /// skew the paper-number denominators.
    pub budget_exceeded: bool,
    /// Validation cost spent on this resolution.
    pub cost: CostSnapshot,
}

impl ResolveOutcome {
    fn servfail(ede: Option<(EdeCode, String)>, cost: CostSnapshot) -> Self {
        ResolveOutcome {
            rcode: Rcode::ServFail,
            authenticated: false,
            answers: Vec::new(),
            authorities: Vec::new(),
            ede,
            budget_exceeded: false,
            cost,
        }
    }
}

/// Security state of the validation chain at the current zone.
#[derive(Clone, Debug)]
enum Chain {
    /// Chain of trust intact; we hold validated keys for the zone.
    Secure(ZoneKeys),
    /// Provably insecure (opt-out or missing DS): no validation expected.
    Insecure,
}

/// A validating recursive resolver, usable directly (via
/// [`Resolver::resolve`]) or as a network [`Node`] serving clients.
pub struct Resolver {
    /// Configuration (public for inspection in experiments).
    pub config: ResolverConfig,
    meter: CostMeter,
    /// Query counter for deterministic message ids.
    next_id: RefCell<u16>,
    /// Final-answer cache (RFC 2308-style negative caching included).
    answer_cache: TtlCache<(Name, RrType), CachedAnswer>,
    /// Validated DNSKEY sets per zone (the big recursion saver).
    key_cache: TtlCache<Name, ZoneKeys>,
    /// Referral state per zone cut, for warm-restart recursion (inert
    /// unless [`ResolverConfig::delegation_cache`] is set).
    delegations: DelegationCache,
    /// RFC 8198 store of verified NSEC3 chains.
    aggressive: AggressiveCache,
}

/// What the answer cache stores: an outcome minus its cost.
#[derive(Clone, Debug)]
struct CachedAnswer {
    rcode: Rcode,
    authenticated: bool,
    answers: Vec<Record>,
    authorities: Vec<Record>,
    ede: Option<(EdeCode, String)>,
    budget_exceeded: bool,
}

impl Resolver {
    /// Build a resolver.
    pub fn new(config: ResolverConfig) -> Self {
        let cache_size = config.cache_size;
        let delegation_capacity = if config.delegation_cache {
            cache_size.min(512)
        } else {
            0
        };
        Resolver {
            config,
            meter: CostMeter::new(),
            next_id: RefCell::new(1),
            answer_cache: TtlCache::new(cache_size),
            key_cache: TtlCache::new(cache_size.min(512)),
            delegations: DelegationCache::new(delegation_capacity),
            aggressive: AggressiveCache::new(),
        }
    }

    /// Cumulative cost across all resolutions.
    pub fn total_cost(&self) -> CostSnapshot {
        self.meter.snapshot()
    }

    /// Answer-cache hit count (experiment instrumentation).
    pub fn cache_hits(&self) -> u64 {
        self.answer_cache.hits()
    }

    /// Answer-cache miss count (serving instrumentation).
    pub fn cache_misses(&self) -> u64 {
        self.answer_cache.misses()
    }

    /// Validated-key-cache hit count (serving instrumentation).
    pub fn key_cache_hits(&self) -> u64 {
        self.key_cache.hits()
    }

    /// Validated-key-cache miss count (serving instrumentation).
    pub fn key_cache_misses(&self) -> u64 {
        self.key_cache.misses()
    }

    /// NXDOMAINs synthesized via RFC 8198 so far.
    pub fn synthesized_nxdomains(&self) -> u64 {
        self.aggressive.synthesized_count()
    }

    /// Zones with cached RFC 8198 denial material.
    pub fn aggressive_zones(&self) -> usize {
        self.aggressive.zone_count()
    }

    /// Delegation-cache hit count: resolutions that restarted at a
    /// cached zone cut instead of walking from the root hints.
    pub fn delegation_hits(&self) -> u64 {
        self.delegations.hits()
    }

    /// Delegation-cache miss count: walks that found no usable cut.
    pub fn delegation_misses(&self) -> u64 {
        self.delegations.misses()
    }

    /// Delegation-cache at-capacity evictions.
    pub fn delegation_evictions(&self) -> u64 {
        self.delegations.evictions()
    }

    /// Zone cuts currently cached in the delegation cache.
    pub fn delegation_len(&self) -> usize {
        self.delegations.len()
    }

    fn fresh_id(&self) -> u16 {
        let mut id = self.next_id.borrow_mut();
        *id = id.wrapping_add(1);
        *id
    }

    /// Send one upstream query, with retries, and decode the reply.
    fn ask(&self, net: &Network, server: IpAddr, qname: &Name, qtype: RrType) -> Option<Message> {
        let id = self.fresh_id();
        let sent_qname = if self.config.case_randomization {
            randomize_case(qname, id)
        } else {
            qname.clone()
        };
        let query = Message::query(id, sent_qname.clone(), qtype);
        // Encode once, TCP-framed: the UDP datagram is the framed buffer
        // minus its 2-byte length prefix, so a TC fallback reuses the
        // same bytes instead of re-encoding.
        let mut framed = Vec::with_capacity(64);
        query.encode_framed_append(&mut framed);
        let wire = &framed[2..];
        self.meter.add_message();
        let report = net.send_query_with_policy(self.config.addr, server, wire, &self.config.retry);
        self.meter
            .add_retries(u64::from(report.attempts.saturating_sub(1)));
        let resp = match report.outcome {
            Outcome::Response { payload, .. } => Message::decode(&payload).ok()?,
            // NoRoute is a definitive "no path" (wrong address family,
            // unregistered server) that clean networks produce too — only
            // genuine timeouts count as spent loss budget.
            Outcome::NoRoute => return None,
            Outcome::Timeout => {
                self.meter.add_timeout();
                return None;
            }
        };
        // Truncated over UDP: retry the exchange over "TCP" (RFC 7766
        // length framing, no size limit).
        let resp = if resp.flags.tc {
            self.meter.add_message();
            let report =
                net.send_query_with_policy(self.config.addr, server, &framed, &self.config.retry);
            self.meter
                .add_retries(u64::from(report.attempts.saturating_sub(1)));
            match report.outcome {
                Outcome::Response { payload, .. } => {
                    Message::decode(unframe_tcp(&payload)?).ok()?
                }
                Outcome::NoRoute => return None,
                Outcome::Timeout => {
                    self.meter.add_timeout();
                    return None;
                }
            }
        } else {
            resp
        };
        if resp.id != query.id || !resp.flags.qr {
            return None;
        }
        if self.config.case_randomization {
            // dns-0x20: the echoed question must match the sent case
            // exactly; anything else is a spoof or a mangler.
            let echoed = resp.question()?;
            if echoed.qname.to_wire() != sent_qname.to_wire() {
                return None;
            }
        }
        Some(resp)
    }

    /// Try every server in order until one responds.
    fn ask_any(
        &self,
        net: &Network,
        servers: &[IpAddr],
        qname: &Name,
        qtype: RrType,
    ) -> Option<Message> {
        servers.iter().find_map(|s| self.ask(net, *s, qname, qtype))
    }

    /// Full recursive resolution of `qname`/`qtype`.
    ///
    /// Implemented by driving a [`Recursion`] machine to completion, so
    /// the blocking path and the event-core stepped path are the same
    /// code executing the same operations in the same order.
    pub fn resolve(&self, net: &Network, qname: &Name, qtype: RrType) -> ResolveOutcome {
        let mut recursion = self.begin_recursion(net, qname, qtype);
        loop {
            if let RecursionStep::Done(outcome) = recursion.step(net) {
                return outcome;
            }
        }
    }

    /// Start a resolution as a steppable [`Recursion`] machine: each
    /// [`Recursion::step`] performs at most one delegation level (one
    /// upstream exchange plus the DS/DNSKEY chain work it triggers), so
    /// event-core drivers can park a multi-hop walk between levels and
    /// interleave many walks under a bounded in-flight window.
    /// Answer-cache hits and RFC 8198 synthesis settle on the first
    /// step. Drive one machine at a time per resolver: the per-query
    /// work budget is armed on the shared meter for the machine's
    /// lifetime.
    pub fn begin_recursion<'a>(
        &'a self,
        net: &Network,
        qname: &Name,
        qtype: RrType,
    ) -> Recursion<'a> {
        let key = (qname.clone(), qtype);
        if let Some(hit) = self.answer_cache.get(&key, net.now_micros()) {
            return Recursion::settled(
                self,
                qname.clone(),
                qtype,
                ResolveOutcome {
                    rcode: hit.rcode,
                    authenticated: hit.authenticated,
                    answers: hit.answers,
                    authorities: hit.authorities,
                    ede: hit.ede,
                    budget_exceeded: hit.budget_exceeded,
                    cost: CostSnapshot::default(),
                },
            );
        }
        if self.config.aggressive_nsec3 {
            let before = self.meter.snapshot();
            if let Some(zone) = self.aggressive.zone_for(qname, net.now_micros()) {
                if self
                    .aggressive
                    .synthesize_nxdomain(&zone, qname, net.now_micros(), &self.meter)
                {
                    return Recursion::settled(
                        self,
                        qname.clone(),
                        qtype,
                        ResolveOutcome {
                            rcode: Rcode::NxDomain,
                            authenticated: true,
                            answers: Vec::new(),
                            authorities: Vec::new(),
                            ede: None,
                            budget_exceeded: false,
                            cost: self.meter.snapshot().since(&before),
                        },
                    );
                }
            }
        }
        // Arm the per-query work budget for the machine's lifetime: the
        // allowance covers everything one client query triggers — the
        // delegation walk, key fetches, CNAME chasing, proof validation.
        self.meter.arm_budget(&self.config.budget);
        let before = self.meter.snapshot();
        Recursion {
            resolver: self,
            qname: qname.clone(),
            qtype,
            before,
            target: qname.clone(),
            hops: 0,
            answers: Vec::new(),
            walk: None,
            settled: None,
            armed: true,
        }
    }

    /// The deepest cached cut covering `target`, when the delegation
    /// cache is enabled (counters stay untouched when it is not).
    fn lookup_delegation(&self, net: &Network, target: &Name) -> Option<(Name, Delegation)> {
        if !self.config.delegation_cache {
            return None;
        }
        self.delegations.deepest(target, net.now_micros())
    }

    /// Start one iterative walk for `target`: from the deepest cached
    /// delegation cut when one is usable, from the root hints otherwise.
    /// The `Err` arm is a settled [`ResolveOutcome`] handed straight to
    /// the caller; it is only built on terminal failures, so its size
    /// never taxes the happy path.
    #[allow(clippy::result_large_err)]
    fn start_walk(
        &self,
        net: &Network,
        target: &Name,
        cost_base: &CostSnapshot,
    ) -> Result<Walk, ResolveOutcome> {
        if let Some((apex, d)) = self.lookup_delegation(net, target) {
            if !self.config.validate || !d.secure {
                return Ok(Walk::at(d.servers, apex, Chain::Insecure));
            }
            // Re-establish the secure chain at the cut: via the cut's
            // own anchor if one is configured, else by re-validating the
            // child keys against the DS set stored with the delegation
            // (a key-cache hit makes both free).
            let keys = match self.anchor_for(&apex) {
                Some(anchor) => self.cached_anchor_keys(net, &d.servers, &anchor),
                None => self.cached_child_keys(net, &d.servers, &apex, &d.ds),
            };
            if let Ok(keys) = keys {
                return Ok(Walk::at(d.servers, apex, Chain::Secure(keys)));
            }
            // A cut whose chain no longer re-validates is abandoned and
            // the walk restarts from the root as if cold.
        }
        let servers = self.config.root_hints.clone();
        let chain = if !self.config.validate {
            Chain::Insecure
        } else {
            match self.anchor_for(&Name::root()) {
                Some(anchor) => match self.cached_anchor_keys(net, &servers, &anchor) {
                    Ok(keys) => Chain::Secure(keys),
                    Err(e) => {
                        return Err(
                            self.validation_failure(e, self.meter.snapshot().since(cost_base))
                        )
                    }
                },
                // No root anchor: the walk starts insecure, but a deeper
                // anchor may still establish an island of trust at its cut.
                None => Chain::Insecure,
            }
        };
        Ok(Walk::at(servers, Name::root(), chain))
    }

    /// One delegation level of the iterative walk: send the (possibly
    /// minimized) question, follow a referral — DS/DNSKEY chain work
    /// included — or classify the authoritative answer.
    fn walk_level(
        &self,
        net: &Network,
        walk: &mut Walk,
        qname: &Name,
        qtype: RrType,
        cost_base: &CostSnapshot,
    ) -> LevelOutcome {
        let fail = |ede: Option<(EdeCode, String)>, meter: &CostMeter| {
            LevelOutcome::Finished(ResolveOutcome::servfail(
                ede,
                meter.snapshot().since(cost_base),
            ))
        };
        if walk.depth >= 24 {
            return fail(None, &self.meter);
        }
        walk.depth += 1;
        // Compute the (possibly minimized) question for this step.
        let (send_name, send_type) = if self.config.qname_minimization {
            match ancestor_below(qname, &walk.zone, walk.min_labels) {
                Some(partial) if partial != *qname => (partial, RrType::NS),
                _ => (qname.clone(), qtype),
            }
        } else {
            (qname.clone(), qtype)
        };
        let minimized = send_name != *qname;
        let resp = match self.ask_any(net, &walk.servers, &send_name, send_type) {
            Some(r) => r,
            None => return fail(None, &self.meter),
        };
        // Referral: authority NS below current zone, not authoritative.
        let referral_cut = resp
            .authorities
            .iter()
            .find(|r| r.rrtype() == RrType::NS && r.name != walk.zone)
            .map(|r| r.name.clone())
            .filter(|_| resp.answers.is_empty() && resp.rcode == Rcode::NoError && !resp.flags.aa);
        if let Some(cut) = referral_cut {
            // Collect glue.
            let mut next_servers: Vec<IpAddr> = Vec::new();
            for rec in &resp.additionals {
                match &rec.rdata {
                    RData::A(a) => next_servers.push(IpAddr::V4(*a)),
                    RData::Aaaa(a) => next_servers.push(IpAddr::V6(*a)),
                    _ => {}
                }
            }
            if next_servers.is_empty() {
                return fail(None, &self.meter);
            }
            // The DS set that validated at this cut (empty when the
            // delegation is insecure or anchor-secured).
            let mut validated_ds: Vec<Record> = Vec::new();
            // An anchor configured for the child apex takes precedence
            // over the parent's DS set — this both enables islands of
            // trust below insecure parents and makes a mis-anchored cut
            // fail as AnchorMismatch instead of silently chaining on.
            let child_anchor = if self.config.validate {
                self.anchor_for(&cut)
            } else {
                None
            };
            let next_chain = if let Some(anchor) = child_anchor {
                match self.cached_anchor_keys(net, &next_servers, &anchor) {
                    Ok(keys) => Chain::Secure(keys),
                    Err(e) => {
                        return LevelOutcome::Finished(
                            self.validation_failure(e, self.meter.snapshot().since(cost_base)),
                        )
                    }
                }
            } else {
                match &walk.chain {
                    Chain::Secure(parent_keys) => {
                        let ds_records: Vec<Record> = resp
                            .authorities
                            .iter()
                            .filter(|r| r.rrtype() == RrType::DS && r.name == cut)
                            .cloned()
                            .collect();
                        if !ds_records.is_empty() {
                            let sigs = rrsigs_at(&resp.authorities, &cut);
                            if let Err(e) = validate_rrset(
                                &cut,
                                &ds_records,
                                &sigs,
                                parent_keys,
                                self.config.now,
                                &self.meter,
                            ) {
                                // Budget aborts keep their identity; every
                                // other DS failure stays the generic bogus
                                // verdict it always was.
                                let e = if e == ValidationError::BudgetExceeded {
                                    e
                                } else {
                                    ValidationError::BadSignature
                                };
                                return LevelOutcome::Finished(self.validation_failure(
                                    e,
                                    self.meter.snapshot().since(cost_base),
                                ));
                            }
                            match self.cached_child_keys(net, &next_servers, &cut, &ds_records) {
                                Ok(keys) => {
                                    validated_ds = ds_records;
                                    Chain::Secure(keys)
                                }
                                Err(e) => {
                                    return LevelOutcome::Finished(self.validation_failure(
                                        e,
                                        self.meter.snapshot().since(cost_base),
                                    ))
                                }
                            }
                        } else {
                            // No DS: must be proven absent.
                            match self.check_insecure_delegation(&resp, &cut, parent_keys) {
                                Ok(LimitFlow::Continue) => Chain::Insecure,
                                Ok(LimitFlow::ServFail) => {
                                    return fail(self.limit_ede(), &self.meter)
                                }
                                Ok(LimitFlow::Insecure) => Chain::Insecure,
                                Err(e) => {
                                    return LevelOutcome::Finished(self.validation_failure(
                                        e,
                                        self.meter.snapshot().since(cost_base),
                                    ))
                                }
                            }
                        }
                    }
                    Chain::Insecure => Chain::Insecure,
                }
            };
            // Remember the cut for warm restarts (NS TTL bounds it).
            if self.config.delegation_cache {
                let ttl = resp
                    .authorities
                    .iter()
                    .filter(|r| r.rrtype() == RrType::NS && r.name == cut)
                    .map(|r| r.ttl)
                    .min()
                    .unwrap_or(3600);
                self.delegations.insert(
                    cut.clone(),
                    Delegation {
                        servers: next_servers.clone(),
                        secure: matches!(next_chain, Chain::Secure(_)),
                        ds: validated_ds,
                    },
                    net.now_micros(),
                    ttl,
                );
            }
            walk.servers = next_servers;
            walk.zone = cut;
            walk.chain = next_chain;
            walk.min_labels = 1;
            return LevelOutcome::Descend;
        }

        if minimized {
            match resp.rcode {
                // The partial name exists (NODATA or an in-zone NS
                // answer): reveal one more label to the same servers.
                Rcode::NoError => {
                    walk.min_labels += 1;
                    return LevelOutcome::Descend;
                }
                // The partial name does not exist: neither does the
                // full qname. Validate the denial of the *partial*
                // name — that is what the proof in hand covers.
                Rcode::NxDomain => {
                    let mut out = self.finish(
                        net,
                        &resp,
                        &send_name,
                        send_type,
                        &walk.zone,
                        &walk.chain,
                        cost_base,
                    );
                    out.answers.clear();
                    return LevelOutcome::Finished(out);
                }
                _ => return fail(None, &self.meter),
            }
        }

        // Final response from the authoritative side.
        LevelOutcome::Finished(self.finish(
            net,
            &resp,
            qname,
            qtype,
            &walk.zone,
            &walk.chain,
            cost_base,
        ))
    }

    /// Validate and classify the authoritative response.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        net: &Network,
        resp: &Message,
        qname: &Name,
        qtype: RrType,
        zone: &Name,
        chain: &Chain,
        cost_base: &CostSnapshot,
    ) -> ResolveOutcome {
        let cost = |m: &CostMeter| m.snapshot().since(cost_base);
        let answers: Vec<Record> = resp
            .answers
            .iter()
            .filter(|r| r.rrtype() != RrType::RRSIG)
            .cloned()
            .collect();
        let keys = match chain {
            Chain::Insecure => {
                // No validation possible: relay as-is, never authenticated.
                return ResolveOutcome {
                    rcode: resp.rcode,
                    authenticated: false,
                    answers,
                    authorities: resp.authorities.clone(),
                    ede: None,
                    budget_exceeded: false,
                    cost: cost(&self.meter),
                };
            }
            Chain::Secure(keys) => keys,
        };

        // Gather NSEC3/NSEC material early: the limit check may shortcut.
        let nsec3_refs: Vec<&Record> = resp
            .authorities
            .iter()
            .chain(resp.answers.iter())
            .filter(|r| r.rrtype() == RrType::NSEC3)
            .collect();
        let parsed_nsec3 = if nsec3_refs.is_empty() {
            None
        } else {
            match parse_nsec3_set(&nsec3_refs) {
                Ok(x) => Some(x),
                Err(ValidationError::UnknownNsec3Algorithm) => {
                    // Unknown algorithm: zone is insecure for us.
                    return ResolveOutcome {
                        rcode: resp.rcode,
                        authenticated: false,
                        answers,
                        authorities: resp.authorities.clone(),
                        ede: None,
                        budget_exceeded: false,
                        cost: cost(&self.meter),
                    };
                }
                Err(e) => return self.validation_failure(e, cost(&self.meter)),
            }
        };

        // RFC 9276 limit enforcement (items 6/8).
        if let Some((params, _)) = &parsed_nsec3 {
            // Ablation arm (DESIGN.md ablation 5): verify the NSEC3 RRSIGs
            // *before* consulting the limits. Strictly more item-7-safe,
            // strictly more expensive — the cost difference is what the
            // `validation` bench quantifies.
            if !self.config.check_limits_first {
                if let Err(e) = self.validate_proof_sigs(resp, keys) {
                    return self.validation_failure(e, cost(&self.meter));
                }
            }
            match self.apply_limits(params, resp, zone, keys) {
                Ok(LimitFlow::Continue) => {}
                Ok(LimitFlow::ServFail) => {
                    return ResolveOutcome::servfail(self.limit_ede(), cost(&self.meter));
                }
                Ok(LimitFlow::Insecure) => {
                    return ResolveOutcome {
                        rcode: resp.rcode,
                        authenticated: false,
                        answers,
                        authorities: resp.authorities.clone(),
                        ede: if self.config.policy.emit_ede {
                            self.limit_ede()
                        } else {
                            None
                        },
                        budget_exceeded: false,
                        cost: cost(&self.meter),
                    };
                }
                Err(e) => return self.validation_failure(e, cost(&self.meter)),
            }
        }

        // Positive answers: validate each RRset.
        if !answers.is_empty() {
            let sets = dns_wire::record::group_rrsets(&answers);
            for set in &sets {
                let owner = &set[0].name;
                let sigs = rrsigs_at(&resp.answers, owner);
                match validate_rrset(owner, set, &sigs, keys, self.config.now, &self.meter) {
                    Ok(()) => {}
                    Err(e) => return self.validation_failure(e, cost(&self.meter)),
                }
                // Wildcard expansion: labels < owner label count means the
                // denial part must also be present and valid.
                if let Some(labels) = wildcard_labels(&sigs, owner, set[0].rrtype()) {
                    if let Some((params, views)) = &parsed_nsec3 {
                        let wild = self.validate_proof_sigs(resp, keys).and_then(|()| {
                            verify_wildcard_expansion(owner, labels, params, views, &self.meter)
                        });
                        if let Err(e) = wild {
                            let e = if e == ValidationError::BudgetExceeded {
                                e
                            } else {
                                ValidationError::BadDenialProof
                            };
                            return self.validation_failure(e, cost(&self.meter));
                        }
                    }
                }
            }
            return ResolveOutcome {
                rcode: resp.rcode,
                authenticated: true,
                answers,
                authorities: resp.authorities.clone(),
                ede: None,
                budget_exceeded: false,
                cost: cost(&self.meter),
            };
        }

        // Negative answers: validate the denial.
        let denial_ok = if let Some((params, views)) = &parsed_nsec3 {
            self.validate_proof_sigs(resp, keys)
                .and_then(|()| match resp.rcode {
                    Rcode::NxDomain => {
                        verify_nxdomain(qname, zone, params, views, &self.meter).map(|_| ())
                    }
                    _ => verify_nodata(qname, qtype, params, views, &self.meter),
                })
        } else {
            // NSEC-based or proofless denial.
            let nsec_refs: Vec<&Record> = resp
                .authorities
                .iter()
                .filter(|r| r.rrtype() == RrType::NSEC)
                .collect();
            if nsec_refs.is_empty() {
                Err(ValidationError::BadDenialProof)
            } else {
                self.validate_nsec_sigs(resp, keys)
                    .and_then(|()| match resp.rcode {
                        Rcode::NxDomain => validator::nsec::verify_nxdomain(qname, &nsec_refs),
                        _ => Ok(()), // NODATA via NSEC: bitmap check
                    })
            }
        };
        match denial_ok {
            Ok(()) => {
                // RFC 8198: a verified denial chain is synthesis material.
                if self.config.aggressive_nsec3 {
                    if let Some((params, views)) = &parsed_nsec3 {
                        self.aggressive
                            .insert(zone, params, views, net.now_micros(), 300);
                    }
                }
                ResolveOutcome {
                    rcode: resp.rcode,
                    authenticated: true,
                    answers,
                    authorities: resp.authorities.clone(),
                    ede: None,
                    budget_exceeded: false,
                    cost: cost(&self.meter),
                }
            }
            Err(e) => self.validation_failure(e, cost(&self.meter)),
        }
    }

    /// Apply the iteration/salt limits; the item-7 subtlety lives here.
    fn apply_limits(
        &self,
        params: &Nsec3Params,
        resp: &Message,
        _zone: &Name,
        keys: &ZoneKeys,
    ) -> Result<LimitFlow, ValidationError> {
        match self
            .config
            .policy
            .action_for(params.iterations, params.salt.len())
        {
            LimitAction::Process => Ok(LimitFlow::Continue),
            LimitAction::ServFail => Ok(LimitFlow::ServFail),
            LimitAction::TreatInsecure => {
                if self.config.policy.verify_nsec3_rrsig {
                    // Item 7: the downgrade decision must rest on
                    // *authenticated* NSEC3 parameters. A budget abort
                    // during that verification keeps its identity; any
                    // other failure stays the limit-policy SERVFAIL.
                    match self.validate_proof_sigs(resp, keys) {
                        Ok(()) => {}
                        Err(ValidationError::BudgetExceeded) => {
                            return Err(ValidationError::BudgetExceeded)
                        }
                        Err(_) => return Ok(LimitFlow::ServFail),
                    }
                }
                Ok(LimitFlow::Insecure)
            }
        }
    }

    /// Verify the RRSIGs over every NSEC3 RRset in the response.
    fn validate_proof_sigs(&self, resp: &Message, keys: &ZoneKeys) -> Result<(), ValidationError> {
        let all: Vec<&Record> = resp.authorities.iter().chain(resp.answers.iter()).collect();
        let owners: Vec<Name> = {
            let mut o: Vec<Name> = all
                .iter()
                .filter(|r| r.rrtype() == RrType::NSEC3)
                .map(|r| r.name.clone())
                .collect();
            o.dedup();
            o
        };
        for owner in owners {
            let rrset: Vec<Record> = all
                .iter()
                .filter(|r| r.rrtype() == RrType::NSEC3 && r.name == owner)
                .map(|r| (*r).clone())
                .collect();
            let sigs: Vec<Record> = all
                .iter()
                .filter(|r| r.rrtype() == RrType::RRSIG && r.name == owner)
                .map(|r| (*r).clone())
                .collect();
            validate_rrset(&owner, &rrset, &sigs, keys, self.config.now, &self.meter)?;
        }
        Ok(())
    }

    /// Verify the RRSIGs over every NSEC RRset in the response.
    fn validate_nsec_sigs(&self, resp: &Message, keys: &ZoneKeys) -> Result<(), ValidationError> {
        let all: Vec<&Record> = resp.authorities.iter().collect();
        for rec in all.iter().filter(|r| r.rrtype() == RrType::NSEC) {
            let rrset = vec![(*rec).clone()];
            let sigs: Vec<Record> = all
                .iter()
                .filter(|r| r.rrtype() == RrType::RRSIG && r.name == rec.name)
                .map(|r| (*r).clone())
                .collect();
            validate_rrset(&rec.name, &rrset, &sigs, keys, self.config.now, &self.meter)?;
        }
        Ok(())
    }

    /// Handle a referral without DS records: validate the DS-absence proof
    /// and apply limits to it.
    fn check_insecure_delegation(
        &self,
        resp: &Message,
        cut: &Name,
        parent_keys: &ZoneKeys,
    ) -> Result<LimitFlow, ValidationError> {
        let nsec3_refs: Vec<&Record> = resp
            .authorities
            .iter()
            .filter(|r| r.rrtype() == RrType::NSEC3)
            .collect();
        if nsec3_refs.is_empty() {
            let nsec_refs: Vec<&Record> = resp
                .authorities
                .iter()
                .filter(|r| r.rrtype() == RrType::NSEC)
                .collect();
            if nsec_refs.is_empty() {
                // No proof at all: a strict validator would treat this as
                // bogus; we match common practice and fail.
                return Err(ValidationError::BadDenialProof);
            }
            self.validate_nsec_sigs(resp, parent_keys)?;
            return Ok(LimitFlow::Continue);
        }
        let (params, views) = parse_nsec3_set(&nsec3_refs)?;
        match self
            .config
            .policy
            .action_for(params.iterations, params.salt.len())
        {
            LimitAction::ServFail => return Ok(LimitFlow::ServFail),
            LimitAction::TreatInsecure => {
                if self.config.policy.verify_nsec3_rrsig {
                    self.validate_proof_sigs(resp, parent_keys)?;
                }
                return Ok(LimitFlow::Insecure);
            }
            LimitAction::Process => {}
        }
        self.validate_proof_sigs(resp, parent_keys)?;
        verify_nodata(cut, RrType::DS, &params, &views, &self.meter)?;
        Ok(LimitFlow::Continue)
    }

    /// The configured trust anchor covering exactly `zone`'s apex, if any.
    fn anchor_for(&self, zone: &Name) -> Option<TrustAnchor> {
        self.config
            .trust_anchors
            .iter()
            .find(|a| a.zone == *zone)
            .cloned()
    }

    /// Key-cache wrapper around [`Resolver::fetch_keys_via_anchor`].
    fn cached_anchor_keys(
        &self,
        net: &Network,
        servers: &[IpAddr],
        anchor: &TrustAnchor,
    ) -> Result<ZoneKeys, ValidationError> {
        if let Some(keys) = self.key_cache.get(&anchor.zone, net.now_micros()) {
            return Ok(keys);
        }
        let keys = self.fetch_keys_via_anchor(net, servers, anchor)?;
        self.key_cache
            .put(anchor.zone.clone(), keys.clone(), net.now_micros(), 3600);
        Ok(keys)
    }

    /// Key-cache wrapper around [`Resolver::fetch_child_keys`].
    fn cached_child_keys(
        &self,
        net: &Network,
        servers: &[IpAddr],
        child: &Name,
        ds_records: &[Record],
    ) -> Result<ZoneKeys, ValidationError> {
        if let Some(keys) = self.key_cache.get(child, net.now_micros()) {
            return Ok(keys);
        }
        let keys = self.fetch_child_keys(net, servers, child, ds_records)?;
        self.key_cache
            .put(child.clone(), keys.clone(), net.now_micros(), 3600);
        Ok(keys)
    }

    /// Fetch the anchored zone's DNSKEY RRset and validate it against
    /// `anchor`. A served key set that does not contain the anchored key
    /// is [`ValidationError::AnchorMismatch`] — the mis-anchored-zone
    /// signal, kept distinct from on-path tampering verdicts.
    fn fetch_keys_via_anchor(
        &self,
        net: &Network,
        servers: &[IpAddr],
        anchor: &TrustAnchor,
    ) -> Result<ZoneKeys, ValidationError> {
        let resp = self
            .ask_any(net, servers, &anchor.zone, RrType::DNSKEY)
            .ok_or(ValidationError::MissingSignature)?;
        let dnskeys: Vec<Record> = resp
            .answers
            .iter()
            .filter(|r| r.rrtype() == RrType::DNSKEY)
            .cloned()
            .collect();
        // Anchor match.
        let anchored = dnskeys.iter().any(|r| {
            let tag = dns_crypto::keytag::key_tag(&r.rdata.canonical_bytes());
            if tag != anchor.key_tag {
                return false;
            }
            let mut buf = anchor.zone.to_canonical_wire();
            buf.extend_from_slice(&r.rdata.canonical_bytes());
            sha256(&buf).to_vec() == anchor.digest
        });
        if !anchored {
            return Err(ValidationError::AnchorMismatch);
        }
        let keys = ZoneKeys::from_dnskeys(anchor.zone.clone(), &dnskeys);
        let sigs = rrsigs_at(&resp.answers, &anchor.zone);
        validate_rrset(
            &anchor.zone,
            &dnskeys,
            &sigs,
            &keys,
            self.config.now,
            &self.meter,
        )?;
        Ok(keys)
    }

    /// Fetch the child zone's DNSKEY RRset and validate it against the DS
    /// set obtained from the parent.
    fn fetch_child_keys(
        &self,
        net: &Network,
        servers: &[IpAddr],
        child: &Name,
        ds_records: &[Record],
    ) -> Result<ZoneKeys, ValidationError> {
        let resp = self
            .ask_any(net, servers, child, RrType::DNSKEY)
            .ok_or(ValidationError::MissingSignature)?;
        let dnskeys: Vec<Record> = resp
            .answers
            .iter()
            .filter(|r| r.rrtype() == RrType::DNSKEY)
            .cloned()
            .collect();
        if dnskeys.is_empty() {
            return Err(ValidationError::MissingSignature);
        }
        // One DNSKEY must match a DS digest.
        let sep_ok = dnskeys.iter().any(|dnskey| {
            let tag = dns_crypto::keytag::key_tag(&dnskey.rdata.canonical_bytes());
            ds_records.iter().any(|ds| match &ds.rdata {
                RData::Ds {
                    key_tag,
                    digest_type: 2,
                    digest,
                    ..
                } if *key_tag == tag => {
                    let mut buf = child.to_canonical_wire();
                    buf.extend_from_slice(&dnskey.rdata.canonical_bytes());
                    sha256(&buf).to_vec() == *digest
                }
                _ => false,
            })
        });
        if !sep_ok {
            return Err(ValidationError::BadSignature);
        }
        let keys = ZoneKeys::from_dnskeys(child.clone(), &dnskeys);
        let sigs = rrsigs_at(&resp.answers, child);
        validate_rrset(child, &dnskeys, &sigs, &keys, self.config.now, &self.meter)?;
        Ok(keys)
    }

    /// SERVFAIL outcome for a validation error, carrying the EDE mapping
    /// and — crucially for the adversarial drivers — the budget flag when
    /// the error was a work-budget abort rather than a verdict on the data.
    fn validation_failure(&self, e: ValidationError, cost: CostSnapshot) -> ResolveOutcome {
        let mut out = ResolveOutcome::servfail(self.ede_for(e), cost);
        out.budget_exceeded = e == ValidationError::BudgetExceeded;
        out
    }

    fn ede_for(&self, e: ValidationError) -> Option<(EdeCode, String)> {
        if !self.config.policy.emit_ede && !self.config.validate {
            return None;
        }
        let (code, text) = match e {
            ValidationError::Expired => (EdeCode::SIGNATURE_EXPIRED, ""),
            ValidationError::MissingSignature => (EdeCode::DNSKEY_MISSING, ""),
            ValidationError::BadDenialProof => (EdeCode::NSEC_MISSING, ""),
            ValidationError::InconsistentNsec3 | ValidationError::UnknownNsec3Algorithm => {
                (EdeCode::DNSSEC_BOGUS, "")
            }
            ValidationError::BadSignature => (EdeCode::DNSSEC_BOGUS, ""),
            // Mis-anchored zone: the served DNSKEY set never matched the
            // configured anchor. Same RFC 8914 code as bogus, but the
            // text lets chain-of-trust reports bucket it separately.
            ValidationError::AnchorMismatch => (EdeCode::DNSSEC_BOGUS, "trust anchor mismatch"),
            // RFC 8914 has no dedicated code for resource-limit aborts;
            // real deployments use 0 (Other) with explanatory text.
            ValidationError::BudgetExceeded => (EdeCode::OTHER, "work budget exceeded"),
        };
        Some((code, text.to_string()))
    }

    fn limit_ede(&self) -> Option<(EdeCode, String)> {
        if self.config.policy.emit_ede {
            Some((
                self.config.policy.ede_code,
                self.config.policy.ede_extra_text.clone(),
            ))
        } else {
            None
        }
    }
}

/// What a limit check decided for control flow.
enum LimitFlow {
    Continue,
    Insecure,
    ServFail,
}

/// In-flight state of one iterative walk (one hop of CNAME chasing).
struct Walk {
    servers: Vec<IpAddr>,
    zone: Name,
    chain: Chain,
    /// RFC 9156: how many labels below the current zone we reveal.
    min_labels: usize,
    /// Delegation levels executed on this walk (24 caps runaway loops).
    depth: usize,
}

impl Walk {
    fn at(servers: Vec<IpAddr>, zone: Name, chain: Chain) -> Self {
        Walk {
            servers,
            zone,
            chain,
            min_labels: 1,
            depth: 0,
        }
    }
}

/// What one delegation level decided.
enum LevelOutcome {
    /// Referral followed or minimized label revealed; the walk continues.
    Descend,
    /// The walk reached a verdict for its current target.
    Finished(ResolveOutcome),
}

/// What a [`Recursion::step`] left behind.
#[derive(Debug)]
pub enum RecursionStep {
    /// More delegation levels remain; call [`Recursion::step`] again
    /// (event-core drivers park the flow here).
    Pending,
    /// The resolution finished with this outcome (already entered into
    /// the answer cache).
    Done(ResolveOutcome),
}

/// One client resolution reified as a steppable machine — the
/// `Iterator`-style recursion engine. Every [`Recursion::step`] performs
/// at most one delegation level (one upstream exchange plus the
/// DS/DNSKEY chain work it triggers), so event-core drivers can
/// interleave many multi-hop walks under a bounded window, while
/// [`Resolver::resolve`] drives the very same machine to completion in a
/// loop: one code path, so blocking and stepped execution are identical
/// by construction.
///
/// The per-query work budget is armed on the resolver's shared meter for
/// the machine's lifetime (dropped machines disarm it), so drive one
/// machine at a time per resolver.
pub struct Recursion<'a> {
    resolver: &'a Resolver,
    qname: Name,
    qtype: RrType,
    /// Cost snapshot when the budget was armed.
    before: CostSnapshot,
    /// Current resolution target (advances along the CNAME chain).
    target: Name,
    /// CNAME hops taken so far (8 caps the chain).
    hops: usize,
    /// Answer records accumulated across CNAME hops.
    answers: Vec<Record>,
    walk: Option<Walk>,
    /// Outcome decided at `begin_recursion` time (cache hit, RFC 8198
    /// synthesis): returned by the first `step` without touching the
    /// network or the answer cache.
    settled: Option<ResolveOutcome>,
    armed: bool,
}

impl<'a> Recursion<'a> {
    /// A machine that already holds its outcome.
    fn settled(
        resolver: &'a Resolver,
        qname: Name,
        qtype: RrType,
        outcome: ResolveOutcome,
    ) -> Self {
        Recursion {
            resolver,
            qname: qname.clone(),
            qtype,
            before: CostSnapshot::default(),
            target: qname,
            hops: 0,
            answers: Vec::new(),
            walk: None,
            settled: Some(outcome),
            armed: false,
        }
    }

    /// The question this machine is resolving.
    pub fn question(&self) -> (&Name, RrType) {
        (&self.qname, self.qtype)
    }

    /// Advance by at most one delegation level.
    pub fn step(&mut self, net: &Network) -> RecursionStep {
        if let Some(outcome) = self.settled.take() {
            return RecursionStep::Done(outcome);
        }
        if self.walk.is_none() {
            match self.resolver.start_walk(net, &self.target, &self.before) {
                Ok(walk) => {
                    self.walk = Some(walk);
                    return RecursionStep::Pending;
                }
                Err(outcome) => return self.finish_resolution(net, outcome),
            }
        }
        let walk = self.walk.as_mut().expect("walk just ensured");
        match self
            .resolver
            .walk_level(net, walk, &self.target, self.qtype, &self.before)
        {
            LevelOutcome::Descend => RecursionStep::Pending,
            LevelOutcome::Finished(outcome) => self.after_walk(net, outcome),
        }
    }

    /// CNAME bookkeeping after one walk finished: chase an in-answer
    /// CNAME (up to 8 hops) or conclude the resolution.
    fn after_walk(&mut self, net: &Network, mut outcome: ResolveOutcome) -> RecursionStep {
        let cname = outcome.answers.iter().find_map(|r| {
            match (
                &r.rdata,
                r.rrtype() == RrType::CNAME && self.qtype != RrType::CNAME,
            ) {
                (RData::Cname(next), true) => Some(next.clone()),
                _ => None,
            }
        });
        let has_final = outcome.answers.iter().any(|r| r.rrtype() == self.qtype);
        self.answers.append(&mut outcome.answers);
        let authorities = std::mem::take(&mut outcome.authorities);
        match cname {
            Some(next) if !has_final && outcome.rcode == Rcode::NoError => {
                self.hops += 1;
                if self.hops >= 8 {
                    let cost = self.resolver.meter.snapshot().since(&self.before);
                    return self.finish_resolution(net, ResolveOutcome::servfail(None, cost));
                }
                self.target = next;
                self.walk = None;
                RecursionStep::Pending
            }
            _ => {
                let outcome = ResolveOutcome {
                    answers: std::mem::take(&mut self.answers),
                    authorities,
                    cost: self.resolver.meter.snapshot().since(&self.before),
                    ..outcome
                };
                self.finish_resolution(net, outcome)
            }
        }
    }

    /// Disarm the budget, cache the outcome, and hand it out.
    fn finish_resolution(&mut self, net: &Network, outcome: ResolveOutcome) -> RecursionStep {
        self.resolver.meter.disarm_budget();
        self.armed = false;
        let ttl = answer_ttl(&outcome);
        self.resolver.answer_cache.put(
            (self.qname.clone(), self.qtype),
            CachedAnswer {
                rcode: outcome.rcode,
                authenticated: outcome.authenticated,
                answers: outcome.answers.clone(),
                authorities: outcome.authorities.clone(),
                ede: outcome.ede.clone(),
                budget_exceeded: outcome.budget_exceeded,
            },
            net.now_micros(),
            ttl,
        );
        RecursionStep::Done(outcome)
    }
}

impl Drop for Recursion<'_> {
    fn drop(&mut self) {
        // An abandoned in-flight machine must not leave the per-query
        // budget armed on the resolver's shared meter.
        if self.armed {
            self.resolver.meter.disarm_budget();
        }
    }
}

/// RRSIGs at `owner` within a section.
fn rrsigs_at(section: &[Record], owner: &Name) -> Vec<Record> {
    section
        .iter()
        .filter(|r| r.rrtype() == RrType::RRSIG && r.name == *owner)
        .cloned()
        .collect()
}

/// If the RRSIG covering (owner, rrtype) proves wildcard expansion, return
/// its labels field.
fn wildcard_labels(sigs: &[Record], owner: &Name, rrtype: RrType) -> Option<u8> {
    sigs.iter().find_map(|s| match &s.rdata {
        RData::Rrsig {
            type_covered,
            labels,
            ..
        } if *type_covered == rrtype && (*labels as usize) < owner.label_count() => Some(*labels),
        _ => None,
    })
}

impl Node for Resolver {
    /// Serve a stub client: run recursion, translate the outcome into a
    /// response message.
    fn handle(
        &self,
        net: &Network,
        _src: IpAddr,
        payload: &[u8],
        reply: &mut Vec<u8>,
    ) -> Option<()> {
        let query = Message::decode(payload).ok()?;
        if query.flags.qr {
            return None;
        }
        let q = query.question()?.clone();
        let outcome = self.resolve(net, &q.qname, q.qtype);
        let mut resp = Message::response_to(&query);
        resp.flags.ra = true;
        resp.rcode = outcome.rcode;
        resp.flags.ad = outcome.authenticated && query.dnssec_ok();
        resp.answers = outcome.answers;
        if query.dnssec_ok() {
            resp.authorities = outcome.authorities;
        }
        if let Some((code, text)) = outcome.ede {
            let mut edns = resp.edns.take().unwrap_or_default();
            edns.push_ede(code, text);
            resp.edns = Some(edns);
        }
        resp.encode_append(reply);
        Some(())
    }
}

/// Convenience: an [`Edns`] block is not required for the resolver's own
/// upstream queries beyond the DO bit, which `Message::query` already sets.
#[allow(dead_code)]
fn _edns_doc(_: &Edns) {}

/// The ancestor of `qname` exactly `below` labels below `zone`, or `None`
/// when `qname` is not strictly below `zone`.
fn ancestor_below(qname: &Name, zone: &Name, below: usize) -> Option<Name> {
    if !qname.is_subdomain_of(zone) || qname == zone {
        return None;
    }
    let want = zone.label_count() + below;
    if qname.label_count() <= want {
        return Some(qname.clone());
    }
    let mut n = qname.clone();
    while n.label_count() > want {
        n = n.parent()?;
    }
    Some(n)
}

/// dns-0x20: flip the case of each letter of `name` according to bits
/// derived deterministically from the name and the query id.
fn randomize_case(name: &Name, id: u16) -> Name {
    let mut bits = 0x9e37_79b9u32 ^ (id as u32) << 7;
    let labels: Vec<Vec<u8>> = name
        .labels()
        .map(|l| {
            l.iter()
                .map(|&b| {
                    bits = bits.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                    if b.is_ascii_alphabetic() && bits & 0x10000 != 0 {
                        b ^ 0x20
                    } else {
                        b
                    }
                })
                .collect()
        })
        .collect();
    Name::from_labels(labels).unwrap_or_else(|_| name.clone())
}

/// Cache TTL for an outcome: the minimum answer TTL, 300 s for negatives
/// (the lab zones' SOA minimum), 30 s for SERVFAIL (RFC 2308 §7 caps
/// failure caching at 5 minutes; resolvers commonly use far less).
fn answer_ttl(outcome: &ResolveOutcome) -> u32 {
    match outcome.rcode {
        Rcode::ServFail => 30,
        _ if outcome.answers.is_empty() => 300,
        _ => outcome
            .answers
            .iter()
            .map(|r| r.ttl)
            .min()
            .unwrap_or(300)
            .min(86_400),
    }
}
