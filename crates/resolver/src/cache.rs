//! TTL-bounded caching, driven by the simulation's virtual clock.
//!
//! Real resolvers cache aggressively — that is why the paper's probing
//! methodology uses a unique label per resolver and why its census
//! expected "a fraction of our queries \[to\] be resolved from \[Cloudflare's\]
//! internal cache" (Appendix A). The resolver uses one [`TtlCache`] for
//! final answers and one for validated zone keys.

use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::Hash;

/// A capacity- and TTL-bounded map over the virtual clock (microseconds).
#[derive(Debug)]
pub struct TtlCache<K, V> {
    entries: RefCell<HashMap<K, (V, u64)>>,
    capacity: usize,
    hits: std::cell::Cell<u64>,
    misses: std::cell::Cell<u64>,
}

impl<K: Eq + Hash + Clone, V: Clone> TtlCache<K, V> {
    /// A cache holding at most `capacity` live entries (0 disables it).
    pub fn new(capacity: usize) -> Self {
        TtlCache {
            entries: RefCell::new(HashMap::new()),
            capacity,
            hits: std::cell::Cell::new(0),
            misses: std::cell::Cell::new(0),
        }
    }

    /// Fetch `key` if present and not expired at `now_micros`.
    pub fn get(&self, key: &K, now_micros: u64) -> Option<V> {
        if self.capacity == 0 {
            return None;
        }
        let mut entries = self.entries.borrow_mut();
        match entries.get(key) {
            Some((v, expiry)) if *expiry > now_micros => {
                self.hits.set(self.hits.get() + 1);
                Some(v.clone())
            }
            Some(_) => {
                entries.remove(key);
                self.misses.set(self.misses.get() + 1);
                None
            }
            None => {
                self.misses.set(self.misses.get() + 1);
                None
            }
        }
    }

    /// Store `value` until `now_micros + ttl_secs`.
    pub fn put(&self, key: K, value: V, now_micros: u64, ttl_secs: u32) {
        if self.capacity == 0 || ttl_secs == 0 {
            return;
        }
        let mut entries = self.entries.borrow_mut();
        if entries.len() >= self.capacity && !entries.contains_key(&key) {
            // Evict expired entries first; if none, evict arbitrarily (the
            // simulation does not model LRU pressure).
            let expired: Vec<K> = entries
                .iter()
                .filter(|(_, (_, e))| *e <= now_micros)
                .map(|(k, _)| k.clone())
                .collect();
            for k in expired {
                entries.remove(&k);
            }
            if entries.len() >= self.capacity {
                if let Some(k) = entries.keys().next().cloned() {
                    entries.remove(&k);
                }
            }
        }
        entries.insert(key, (value, now_micros + ttl_secs as u64 * 1_000_000));
    }

    /// Live entry count (may include expired entries not yet collected).
    pub fn len(&self) -> usize {
        self.entries.borrow().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.borrow().is_empty()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Drop everything.
    pub fn clear(&self) {
        self.entries.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_expiry() {
        let cache: TtlCache<&str, u32> = TtlCache::new(8);
        assert_eq!(cache.get(&"k", 0), None);
        cache.put("k", 7, 0, 300);
        assert_eq!(cache.get(&"k", 1_000), Some(7));
        // 300 s later: expired.
        assert_eq!(cache.get(&"k", 300_000_001), None);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let cache: TtlCache<&str, u32> = TtlCache::new(0);
        cache.put("k", 7, 0, 300);
        assert_eq!(cache.get(&"k", 1), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn zero_ttl_not_stored() {
        let cache: TtlCache<&str, u32> = TtlCache::new(8);
        cache.put("k", 7, 0, 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_bounded_with_expired_eviction_first() {
        let cache: TtlCache<u32, u32> = TtlCache::new(2);
        cache.put(1, 1, 0, 1); // expires at 1s
        cache.put(2, 2, 0, 1000);
        // At t=2s entry 1 is expired; inserting 3 evicts it, keeps 2.
        cache.put(3, 3, 2_000_000, 1000);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&2, 2_000_001), Some(2));
        assert_eq!(cache.get(&3, 2_000_001), Some(3));
    }

    #[test]
    fn overwrite_updates_expiry() {
        let cache: TtlCache<&str, u32> = TtlCache::new(2);
        cache.put("k", 1, 0, 1);
        cache.put("k", 2, 0, 1000);
        assert_eq!(cache.get(&"k", 500_000_000), Some(2));
    }
}
