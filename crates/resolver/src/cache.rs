//! TTL-bounded caching, driven by the simulation's virtual clock.
//!
//! Real resolvers cache aggressively — that is why the paper's probing
//! methodology uses a unique label per resolver and why its census
//! expected "a fraction of our queries \[to\] be resolved from \[Cloudflare's\]
//! internal cache" (Appendix A). The resolver uses one [`TtlCache`] for
//! final answers and one for validated zone keys.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::ops::Bound;

/// How many sorted neighbours an at-capacity insert probes for an
/// expired victim before settling for the nearest live one.
const EVICTION_PROBE: usize = 8;

/// A capacity- and TTL-bounded map over the virtual clock (microseconds).
///
/// Storage is a `BTreeMap`, not a `HashMap`, and that is load-bearing:
/// at-capacity eviction must pick a victim, and any choice driven by
/// randomized hash order would leak nondeterminism into every driver
/// that overflows a cache (the serving workload does, by design). Sorted
/// order makes the victim a pure function of the cache contents.
#[derive(Debug)]
pub struct TtlCache<K, V> {
    entries: RefCell<BTreeMap<K, (V, u64)>>,
    capacity: usize,
    hits: std::cell::Cell<u64>,
    misses: std::cell::Cell<u64>,
    evictions: std::cell::Cell<u64>,
}

impl<K: Ord + Clone, V: Clone> TtlCache<K, V> {
    /// A cache holding at most `capacity` live entries (0 disables it).
    pub fn new(capacity: usize) -> Self {
        TtlCache {
            entries: RefCell::new(BTreeMap::new()),
            capacity,
            hits: std::cell::Cell::new(0),
            misses: std::cell::Cell::new(0),
            evictions: std::cell::Cell::new(0),
        }
    }

    /// Fetch `key` if present and not expired at `now_micros`.
    pub fn get(&self, key: &K, now_micros: u64) -> Option<V> {
        if self.capacity == 0 {
            return None;
        }
        let mut entries = self.entries.borrow_mut();
        match entries.get(key) {
            Some((v, expiry)) if *expiry > now_micros => {
                self.hits.set(self.hits.get() + 1);
                Some(v.clone())
            }
            Some(_) => {
                entries.remove(key);
                self.misses.set(self.misses.get() + 1);
                None
            }
            None => {
                self.misses.set(self.misses.get() + 1);
                None
            }
        }
    }

    /// Store `value` until `now_micros + ttl_secs`.
    pub fn put(&self, key: K, value: V, now_micros: u64, ttl_secs: u32) {
        if self.capacity == 0 || ttl_secs == 0 {
            return;
        }
        let mut entries = self.entries.borrow_mut();
        if entries.len() >= self.capacity && !entries.contains_key(&key) {
            // O(log n) eviction, no full-map scan and no collected key
            // list on the insert hot path: probe a few sorted
            // neighbours of the new key (wrapping) for an expired
            // victim, and settle for the nearest neighbour if all are
            // live. Wrapped-successor choice spreads eviction around
            // the keyspace (the simulation does not model LRU
            // pressure) and, unlike hash order, is deterministic.
            let victim = {
                let after = entries.range((Bound::Excluded(&key), Bound::Unbounded));
                let before = entries.range((Bound::Unbounded, Bound::Excluded(&key)));
                let mut probe = after.chain(before);
                let mut fallback = None;
                let mut expired = None;
                for (k, (_, e)) in probe.by_ref().take(EVICTION_PROBE) {
                    if fallback.is_none() {
                        fallback = Some(k.clone());
                    }
                    if *e <= now_micros {
                        expired = Some(k.clone());
                        break;
                    }
                }
                expired.or(fallback)
            };
            if let Some(k) = victim {
                entries.remove(&k);
                self.evictions.set(self.evictions.get() + 1);
            }
        }
        entries.insert(key, (value, now_micros + ttl_secs as u64 * 1_000_000));
    }

    /// Live entry count (may include expired entries not yet collected).
    pub fn len(&self) -> usize {
        self.entries.borrow().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.borrow().is_empty()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// At-capacity evictions so far (expired-entry removal on `get` is
    /// not an eviction; only the insert path displacing a victim counts).
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Drop everything.
    pub fn clear(&self) {
        self.entries.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_expiry() {
        let cache: TtlCache<&str, u32> = TtlCache::new(8);
        assert_eq!(cache.get(&"k", 0), None);
        cache.put("k", 7, 0, 300);
        assert_eq!(cache.get(&"k", 1_000), Some(7));
        // 300 s later: expired.
        assert_eq!(cache.get(&"k", 300_000_001), None);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let cache: TtlCache<&str, u32> = TtlCache::new(0);
        cache.put("k", 7, 0, 300);
        assert_eq!(cache.get(&"k", 1), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn zero_ttl_not_stored() {
        let cache: TtlCache<&str, u32> = TtlCache::new(8);
        cache.put("k", 7, 0, 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_bounded_with_expired_eviction_first() {
        let cache: TtlCache<u32, u32> = TtlCache::new(2);
        cache.put(1, 1, 0, 1); // expires at 1s
        cache.put(2, 2, 0, 1000);
        // At t=2s entry 1 is expired; inserting 3 evicts it, keeps 2.
        cache.put(3, 3, 2_000_000, 1000);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&2, 2_000_001), Some(2));
        assert_eq!(cache.get(&3, 2_000_001), Some(3));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn overwrite_updates_expiry() {
        let cache: TtlCache<&str, u32> = TtlCache::new(2);
        cache.put("k", 1, 0, 1);
        cache.put("k", 2, 0, 1000);
        assert_eq!(cache.get(&"k", 500_000_000), Some(2));
    }
}
