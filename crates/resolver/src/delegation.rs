//! The delegation cache: referral state learned while walking the
//! delegation graph, so a warm resolver restarts recursion at the
//! deepest zone cut it already knows instead of from the root hints.
//!
//! Real recursors keep NS RRsets (and the validated DS sets covering
//! them) cached per zone cut; without this every resolution re-walks
//! root → TLD → leaf and the root servers see every query. Storage is a
//! [`TtlCache`] keyed by zone apex — the same BTreeMap discipline, so
//! at-capacity eviction is a pure function of the cache contents and
//! sharded drivers stay byte-identical at any thread count or window.

use dns_wire::name::Name;
use dns_wire::record::Record;
use std::net::IpAddr;

use crate::cache::TtlCache;

/// One cached zone cut: where to send queries for names under `apex`,
/// and the security state the walk established for it.
#[derive(Clone, Debug)]
pub struct Delegation {
    /// Nameserver addresses (glue) for the zone.
    pub servers: Vec<IpAddr>,
    /// The chain state at the cut: `true` means the parent published a
    /// DS set that validated (the `ds` field holds it); `false` means
    /// the delegation was proven insecure (opt-out / no DS).
    pub secure: bool,
    /// The validated DS RRset from the parent side of the cut. Re-used
    /// to re-validate the child's DNSKEYs when the key cache has
    /// expired but the delegation has not.
    pub ds: Vec<Record>,
}

/// TTL-bounded map from zone apex to [`Delegation`], with
/// deepest-ancestor lookup and its own hit/miss accounting (the inner
/// per-ancestor probes would otherwise overcount misses).
#[derive(Debug)]
pub struct DelegationCache {
    entries: TtlCache<Name, Delegation>,
    hits: std::cell::Cell<u64>,
    misses: std::cell::Cell<u64>,
}

impl DelegationCache {
    /// A cache holding at most `capacity` zone cuts (0 disables it).
    pub fn new(capacity: usize) -> Self {
        DelegationCache {
            entries: TtlCache::new(capacity),
            hits: std::cell::Cell::new(0),
            misses: std::cell::Cell::new(0),
        }
    }

    /// The deepest cached delegation on the path from the root to
    /// `qname` (never the root itself — root hints cover that), with
    /// the apex it is cached under. One hit or miss is recorded per
    /// call, not per ancestor probed.
    pub fn deepest(&self, qname: &Name, now_micros: u64) -> Option<(Name, Delegation)> {
        let mut cursor = Some(qname.clone());
        while let Some(n) = cursor {
            if n.is_root() {
                break;
            }
            if let Some(d) = self.entries.get(&n, now_micros) {
                self.record(true);
                return Some((n, d));
            }
            cursor = n.parent();
        }
        self.record(false);
        None
    }

    /// Record the cut learned from a referral.
    pub fn insert(&self, apex: Name, delegation: Delegation, now_micros: u64, ttl_secs: u32) {
        self.entries.put(apex, delegation, now_micros, ttl_secs);
    }

    fn record(&self, hit: bool) {
        if hit {
            self.hits.set(self.hits.get() + 1);
        } else {
            self.misses.set(self.misses.get() + 1);
        }
    }

    /// Lookups that found a usable cut.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups that walked every ancestor and found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// At-capacity evictions in the underlying store.
    pub fn evictions(&self) -> u64 {
        self.entries.evictions()
    }

    /// Cached cut count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no cut is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn d(addr: &str) -> Delegation {
        Delegation {
            servers: vec![addr.parse().unwrap()],
            secure: false,
            ds: Vec::new(),
        }
    }

    #[test]
    fn deepest_ancestor_wins() {
        let cache = DelegationCache::new(8);
        cache.insert(n("com."), d("192.0.2.1"), 0, 3600);
        cache.insert(n("example.com."), d("192.0.2.2"), 0, 3600);
        let (apex, hit) = cache.deepest(&n("www.example.com."), 1).unwrap();
        assert_eq!(apex, n("example.com."));
        assert_eq!(hit.servers, vec!["192.0.2.2".parse::<IpAddr>().unwrap()]);
        // A name only under com. falls back to the shallower cut.
        let (apex, _) = cache.deepest(&n("other.com."), 1).unwrap();
        assert_eq!(apex, n("com."));
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn miss_counts_once_not_per_ancestor() {
        let cache = DelegationCache::new(8);
        assert!(cache.deepest(&n("a.b.c.d.example."), 0).is_none());
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn ttl_expiry_falls_back() {
        let cache = DelegationCache::new(8);
        cache.insert(n("com."), d("192.0.2.1"), 0, 3600);
        cache.insert(n("example.com."), d("192.0.2.2"), 0, 1);
        let (apex, _) = cache.deepest(&n("www.example.com."), 2_000_000).unwrap();
        assert_eq!(apex, n("com."), "expired deep cut skipped");
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = DelegationCache::new(0);
        cache.insert(n("com."), d("192.0.2.1"), 0, 3600);
        assert!(cache.deepest(&n("www.com."), 1).is_none());
        assert!(cache.is_empty());
    }
}
