//! The aberrant resolver behaviours §5.2 observed in the wild: forwarders,
//! query-copying middleboxes that SERVFAIL from `it-1`, resolvers that skip
//! NSEC3 RRSIG verification (item 7 violators), and flaky two-threshold
//! resolvers (item 12).

use std::cell::Cell;
use std::net::IpAddr;

use dns_wire::message::Message;
use dns_wire::rrtype::Rcode;
use dns_wire::view::MessageView;
use netsim::{Network, Node, Outcome};

use crate::policy::Rfc9276Policy;
use crate::resolver::Resolver;

/// A forwarder: relays client queries to an upstream recursive resolver
/// and relays the answer back. The paper's server-side logging identifies
/// these because the authoritative sees the *upstream's* address.
pub struct Forwarder {
    /// Our own egress address.
    pub addr: IpAddr,
    /// The upstream recursive resolver.
    pub upstream: IpAddr,
    /// Strip EDNS EDE options from upstream answers (common middlebox
    /// behaviour, depresses measured EDE support).
    pub strip_ede: bool,
}

impl Node for Forwarder {
    fn handle(
        &self,
        net: &Network,
        _src: IpAddr,
        payload: &[u8],
        reply: &mut Vec<u8>,
    ) -> Option<()> {
        match net.send_query(self.addr, self.upstream, payload) {
            Outcome::Response {
                payload: upstream_reply,
                ..
            } => {
                if !self.strip_ede {
                    // Relay verbatim: the upstream buffer becomes the reply.
                    *reply = upstream_reply;
                    return Some(());
                }
                let mut msg = Message::decode(&upstream_reply).ok()?;
                if let Some(edns) = &mut msg.edns {
                    edns.options
                        .retain(|o| !matches!(o, dns_wire::edns::EdnsOption::Ede { .. }));
                }
                msg.encode_append(reply);
                Some(())
            }
            _ => None,
        }
    }
}

/// The "query copier" middlebox: claims to resolve, SERVFAILs any domain
/// whose denial uses even one additional NSEC3 iteration, and — the
/// fingerprint the paper reports — builds its response by copying the query
/// header, so RA is only set if the *query* carried RA.
pub struct QueryCopier {
    inner: Resolver,
}

impl QueryCopier {
    /// Wrap a resolver; its policy is forced to SERVFAIL above 0
    /// iterations.
    pub fn new(mut inner: Resolver) -> Self {
        inner.config.policy = Rfc9276Policy {
            emit_ede: false,
            ..Rfc9276Policy::servfail_above(0)
        };
        QueryCopier { inner }
    }
}

impl Node for QueryCopier {
    fn handle(
        &self,
        net: &Network,
        _src: IpAddr,
        payload: &[u8],
        reply: &mut Vec<u8>,
    ) -> Option<()> {
        let query = Message::decode(payload).ok()?;
        if query.flags.qr {
            return None;
        }
        let q = query.question()?.clone();
        let outcome = self.inner.resolve(net, &q.qname, q.qtype);
        let mut resp = Message::response_to(&query);
        // The copier quirk: header flags are copied from the query, so RA
        // mirrors whatever the client set (normally: nothing).
        resp.flags.ra = query.flags.ra;
        resp.flags.ad = outcome.authenticated && query.dnssec_ok();
        resp.rcode = outcome.rcode;
        resp.answers = outcome.answers;
        resp.encode_append(reply);
        Some(())
    }
}

/// A flaky resolver whose effective thresholds wobble between queries —
/// the paper attributes the apparent item 12 violations (insecure at N,
/// SERVFAIL at M > N, different on re-query) to such instability.
pub struct FlakyResolver {
    inner: Resolver,
    /// Policies cycled per query.
    pub phases: Vec<Rfc9276Policy>,
    counter: Cell<usize>,
}

impl FlakyResolver {
    /// Cycle through `phases` on successive queries.
    pub fn new(inner: Resolver, phases: Vec<Rfc9276Policy>) -> Self {
        assert!(!phases.is_empty());
        FlakyResolver {
            inner,
            phases,
            counter: Cell::new(0),
        }
    }

    /// The classic gap: insecure above `n`, SERVFAIL above `m` (> n), with
    /// the exact split drifting between queries.
    pub fn with_gap(inner: Resolver, n: u16, m: u16) -> Self {
        let a = Rfc9276Policy {
            insecure_above: Some(n),
            ..Rfc9276Policy::servfail_above(m)
        };
        let b = Rfc9276Policy {
            insecure_above: Some(n),
            ..Rfc9276Policy::unlimited()
        };
        let c = Rfc9276Policy::servfail_above(m);
        Self::new(inner, vec![a, b, c])
    }
}

impl Node for FlakyResolver {
    fn handle(
        &self,
        net: &Network,
        _src: IpAddr,
        payload: &[u8],
        reply: &mut Vec<u8>,
    ) -> Option<()> {
        let query = Message::decode(payload).ok()?;
        if query.flags.qr {
            return None;
        }
        let q = query.question()?.clone();
        let phase = self.counter.get();
        self.counter.set(phase + 1);
        let policy = self.phases[phase % self.phases.len()].clone();
        // Re-run the inner resolver under the phase policy.
        let mut cfg = self.inner.config.clone();
        cfg.policy = policy;
        let resolver = Resolver::new(cfg);
        let outcome = resolver.resolve(net, &q.qname, q.qtype);
        let mut resp = Message::response_to(&query);
        resp.flags.ra = true;
        resp.flags.ad = outcome.authenticated && query.dnssec_ok();
        resp.rcode = outcome.rcode;
        resp.answers = outcome.answers;
        if let Some((code, text)) = outcome.ede {
            let mut edns = resp.edns.take().unwrap_or_default();
            edns.push_ede(code, text);
            resp.edns = Some(edns);
        }
        resp.encode_append(reply);
        Some(())
    }
}

/// Helper for experiments: interpret a client-visible response the way the
/// paper's classifier does (§5.2): rcode, AD bit, EDE.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObservedResponse {
    /// Response code.
    pub rcode: Rcode,
    /// AD bit.
    pub ad: bool,
    /// RA bit (the copier fingerprint).
    pub ra: bool,
    /// EDE info-code, if present.
    pub ede: Option<u16>,
    /// EXTRA-TEXT non-empty?
    pub ede_has_text: bool,
}

impl ObservedResponse {
    /// Parse from a wire response. Uses the zero-copy [`MessageView`]:
    /// the classifier only reads the header and the OPT record, so the
    /// answer sections are validated but never materialized. `parse` +
    /// `validate` accept exactly what `Message::decode` accepts, keeping
    /// the classifier's accept/reject behaviour unchanged.
    pub fn from_wire(payload: &[u8]) -> Option<Self> {
        let view = MessageView::parse(payload).ok()?;
        let edns = view.validate().ok()?;
        let (ede, ede_has_text) = match edns.as_ref().and_then(|e| e.ede()) {
            Some((code, text)) => (Some(code.0), !text.is_empty()),
            None => (None, false),
        };
        let flags = view.flags();
        Some(ObservedResponse {
            rcode: view.rcode().ok()?,
            ad: flags.ad,
            ra: flags.ra,
            ede,
            ede_has_text,
        })
    }
}
