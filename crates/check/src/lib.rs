//! A minimal deterministic property-testing harness — the in-workspace
//! replacement for the external `proptest` crate.
//!
//! Design (deliberately small):
//!
//! * A *generator* is anything implementing [`Gen`]: a function of
//!   `(&mut Xoshiro256pp, size) -> T`. Combinators in [`gens`] build the
//!   usual vocabulary (ranges, collections, one-of, map/filter).
//! * [`props!`] declares `#[test]` functions that run a property over a
//!   fixed number of generated cases with a deterministically derived
//!   per-case seed. No files, no persistence, no time: the same binary
//!   reruns the same cases forever.
//! * Failure reporting includes the run seed, the case seed, and the
//!   minimized counterexample; setting `SIM_CHECK_SEED` reproduces a run
//!   exactly.
//! * *Minimization-lite*: generators consume a `size` budget that ramps
//!   up across cases; on failure the harness replays the failing case
//!   seed at every smaller size and reports the smallest size that still
//!   fails. This shrinks collection-valued counterexamples without the
//!   complexity of structural shrinking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

pub use sim_rng::{Rng, Xoshiro256pp};

pub mod gens;

/// A value generator: draws a `T` from the RNG within a `size` budget
/// (collections bound their lengths by it; scalars ignore it).
pub trait Gen<T> {
    /// Generate one value.
    fn generate(&self, rng: &mut Xoshiro256pp, size: usize) -> T;
}

impl<T, F> Gen<T> for F
where
    F: Fn(&mut Xoshiro256pp, usize) -> T,
{
    fn generate(&self, rng: &mut Xoshiro256pp, size: usize) -> T {
        self(rng, size)
    }
}

macro_rules! impl_gen_tuple {
    ($($g:ident $t:ident $idx:tt),+) => {
        impl<$($t,)+ $($g: Gen<$t>,)+> Gen<($($t,)+)> for ($($g,)+) {
            fn generate(&self, rng: &mut Xoshiro256pp, size: usize) -> ($($t,)+) {
                ($(self.$idx.generate(rng, size),)+)
            }
        }
    };
}

impl_gen_tuple!(GA A 0, GB B 1);
impl_gen_tuple!(GA A 0, GB B 1, GC C 2);
impl_gen_tuple!(GA A 0, GB B 1, GC C 2, GD D 3);
impl_gen_tuple!(GA A 0, GB B 1, GC C 2, GD D 3, GE E 4);

/// Harness configuration. `SIM_CHECK_CASES` and `SIM_CHECK_SEED`
/// override the defaults at run time ([`Config::from_env`]).
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Maximum size budget; cases ramp from 0 up to this.
    pub max_size: usize,
    /// Run seed. Every case seed derives from it and the property name.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 40,
            max_size: 60,
            seed: 0x5EED_5EED_5EED_5EED,
        }
    }
}

impl Config {
    /// The default configuration with `SIM_CHECK_CASES` / `SIM_CHECK_SEED`
    /// environment overrides applied (decimal, or `0x`-prefixed hex for
    /// the seed — the failure report prints it in that form).
    pub fn from_env() -> Self {
        let mut cfg = Config::default();
        if let Ok(v) = std::env::var("SIM_CHECK_CASES") {
            if let Ok(n) = v.trim().parse() {
                cfg.cases = n;
            }
        }
        if let Ok(v) = std::env::var("SIM_CHECK_SEED") {
            let v = v.trim();
            let parsed = match v.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => v.parse().ok(),
            };
            if let Some(s) = parsed {
                cfg.seed = s;
            }
        }
        cfg
    }
}

thread_local! {
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

/// While probing cases we expect panics; the default hook would spam
/// stderr with every probe. Install (once) a wrapper that honours a
/// thread-local quiet flag and otherwise defers to the previous hook.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// FNV-1a, used to give every property its own stream under one run seed.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn case_rng(case_seed: u64) -> Xoshiro256pp {
    Xoshiro256pp::seed_from_u64(case_seed)
}

/// Run `prop` against one generated case; `Some(message)` on failure.
fn probe<T: Debug>(
    generate: &impl Fn(&mut Xoshiro256pp, usize) -> T,
    prop: &impl Fn(T),
    case_seed: u64,
    size: usize,
) -> Option<String> {
    QUIET.with(|q| q.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        let value = generate(&mut case_rng(case_seed), size);
        prop(value);
    }));
    QUIET.with(|q| q.set(false));
    outcome.err().map(panic_message)
}

/// Replay a generation (no property) to show the counterexample. The
/// generator may itself fail at tiny sizes (filtered generators); report
/// that instead of masking the original failure.
fn render_value<T: Debug>(
    generate: &impl Fn(&mut Xoshiro256pp, usize) -> T,
    case_seed: u64,
    size: usize,
) -> String {
    QUIET.with(|q| q.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        format!("{:#?}", generate(&mut case_rng(case_seed), size))
    }));
    QUIET.with(|q| q.set(false));
    outcome.unwrap_or_else(|_| "<generator failed on replay>".to_string())
}

/// Run the property, returning the failure report instead of panicking —
/// `None` means all cases passed. [`run_named`] is the panicking wrapper
/// the [`props!`] macro uses; this form exists so the harness can test
/// (and callers can observe) its own failure reporting.
pub fn check<T: Debug>(
    name: &str,
    cfg: &Config,
    generate: impl Fn(&mut Xoshiro256pp, usize) -> T,
    prop: impl Fn(T),
) -> Option<String> {
    install_quiet_hook();
    let mut master = Xoshiro256pp::seed_from_u64(cfg.seed ^ fnv1a(name));
    for case in 0..cfg.cases {
        let case_seed = master.next_u64();
        let ramp_den = (cfg.cases.max(2) - 1) as usize;
        let size = (cfg.max_size * case as usize)
            .div_ceil(ramp_den)
            .min(cfg.max_size);
        let Some(message) = probe(&generate, &prop, case_seed, size) else {
            continue;
        };
        // Minimization-lite: smallest size (same case seed) still failing.
        let (min_size, min_message) = (0..size)
            .find_map(|s| probe(&generate, &prop, case_seed, s).map(|m| (s, m)))
            .unwrap_or((size, message));
        let value = render_value(&generate, case_seed, min_size);
        return Some(format!(
            "property '{name}' failed after {cases} case(s)\n\
             \x20 run seed:    0x{seed:016X} (set SIM_CHECK_SEED=0x{seed:016X} to reproduce)\n\
             \x20 case seed:   0x{case_seed:016X} (case {case}, size {size}, minimized to size {min_size})\n\
             \x20 counterexample: {value}\n\
             \x20 failure: {min_message}",
            cases = case + 1,
            seed = cfg.seed,
        ));
    }
    None
}

/// Run a property and panic with a full report on failure. The
/// [`props!`] macro expands to calls of this.
pub fn run_named<T: Debug>(
    name: &str,
    cfg: &Config,
    generate: impl Fn(&mut Xoshiro256pp, usize) -> T,
    prop: impl Fn(T),
) {
    if let Some(report) = check(name, cfg, generate, prop) {
        panic!("{report}");
    }
}

/// Declare property tests.
///
/// ```
/// use sim_check::{props, gens};
///
/// props! {
///     #![cases = 64]
///     fn addition_commutes(a in gens::u32s(..), b in gens::u32s(..)) {
///         assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
///     }
/// }
/// ```
///
/// Each `fn` becomes a `#[test]` running `cases` generated cases (the
/// `#![cases = N]` header is optional). Bindings draw from any [`Gen`]
/// expression; the body is ordinary Rust using ordinary `assert!`s.
#[macro_export]
macro_rules! props {
    (#![cases = $cases:expr] $($rest:tt)*) => {
        $crate::props!(@cfg ($crate::Config { cases: $cases, ..$crate::Config::from_env() }) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $gen:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let cfg = $cfg;
            $crate::run_named(
                stringify!($name),
                &cfg,
                |rng, size| ($( $crate::Gen::generate(&($gen), rng, size), )+),
                |($($arg,)+)| $body,
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::props!(@cfg ($crate::Config::from_env()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gens;

    props! {
        fn passing_property_runs_all_cases(v in gens::vec_of(gens::u8s(..), 0..20)) {
            assert!(v.len() <= 20);
        }

        fn tuples_generate_componentwise(pair in (gens::u16s(1..10), gens::u16s(10..20))) {
            assert!(pair.0 < pair.1);
        }
    }

    /// A seeded failing property produces the exact same report twice —
    /// same case seed, same minimized counterexample.
    #[test]
    fn seeded_failure_reproduces_identically() {
        let cfg = Config {
            cases: 50,
            max_size: 40,
            seed: 0xDEAD_BEEF,
        };
        let run = || {
            check(
                "repro",
                &cfg,
                |rng, size| gens::vec_of(gens::u32s(0..1000), 0..40).generate(rng, size),
                |v: Vec<u32>| assert!(v.len() < 6, "vector too long: {}", v.len()),
            )
        };
        let a = run().expect("property must fail");
        let b = run().expect("property must fail");
        assert_eq!(a, b, "identical seeds must yield identical reports");
        assert!(
            a.contains("0x00000000DEADBEEF"),
            "report names the run seed: {a}"
        );
        assert!(a.contains("counterexample"), "{a}");
    }

    /// Minimization-lite finds a smaller failing size than the one that
    /// first failed (the minimal failing vector here has 6 elements).
    #[test]
    fn minimization_shrinks_the_failing_size() {
        let cfg = Config {
            cases: 60,
            max_size: 60,
            seed: 1,
        };
        let report = check(
            "shrink",
            &cfg,
            |rng, size| gens::vec_of(gens::u8s(..), 0..60).generate(rng, size),
            |v: Vec<u8>| assert!(v.len() < 6),
        )
        .expect("must fail");
        // The minimized size must allow a 6-element vector but not be the
        // unminimized original; sizes 0..5 cannot fail.
        let min_size: usize = report
            .split("minimized to size ")
            .nth(1)
            .and_then(|rest| rest.split(')').next())
            .and_then(|n| n.trim().parse().ok())
            .expect("report contains minimized size");
        assert!(
            (6..=20).contains(&min_size),
            "minimized size {min_size}\n{report}"
        );
    }

    /// Different seeds explore different cases.
    #[test]
    fn different_seeds_differ() {
        let gen = |rng: &mut Xoshiro256pp, size: usize| {
            gens::vec_of(gens::u64s(..), 5..30).generate(rng, size)
        };
        let collect = |seed: u64| {
            let mut out = Vec::new();
            let cfg = Config {
                cases: 4,
                max_size: 30,
                seed,
            };
            // Abuse check(): record by failing never, observing via closure.
            let sink = std::cell::RefCell::new(&mut out);
            check("collect", &cfg, gen, |v: Vec<u64>| {
                sink.borrow_mut().push(v)
            });
            out
        };
        assert_ne!(collect(1), collect(2));
        assert_eq!(collect(3), collect(3));
    }

    #[test]
    fn env_config_parses_hex_seed() {
        // Not using set_var (process-global, racy): exercise the parser.
        let mut cfg = Config::default();
        let v = "0x00000000DEADBEEF";
        cfg.seed = u64::from_str_radix(v.strip_prefix("0x").unwrap(), 16).unwrap();
        assert_eq!(cfg.seed, 0xDEAD_BEEF);
    }
}
