//! Generator combinators: the vocabulary [`props!`](crate::props)
//! properties draw their inputs from.
//!
//! Integer generators accept any range form (`3..10`, `1..=20`, `..`).
//! Collection generators additionally bound their lengths by the
//! harness's ramping `size` budget, which is what makes
//! minimization-lite effective.

use std::collections::BTreeSet;

use sim_rng::{Rng, Xoshiro256pp};

use crate::Gen;

type DynGen<T> = dyn Fn(&mut Xoshiro256pp, usize) -> T;

/// A boxed generator, for heterogeneous collections of choices
/// ([`one_of`], [`weighted`]).
pub struct BoxGen<T>(Box<DynGen<T>>);

impl<T> Gen<T> for BoxGen<T> {
    fn generate(&self, rng: &mut Xoshiro256pp, size: usize) -> T {
        (self.0)(rng, size)
    }
}

/// Box a generator for use with [`one_of`] / [`weighted`].
pub fn boxed<T: 'static>(g: impl Gen<T> + 'static) -> BoxGen<T> {
    BoxGen(Box::new(move |rng, size| g.generate(rng, size)))
}

/// An inclusive-bounds conversion for integer range arguments.
pub trait IntoInclusive<T> {
    /// The `(lo, hi)` inclusive bounds.
    fn bounds(self) -> (T, T);
}

macro_rules! int_gen {
    ($fn_name:ident, $t:ty, $doc:literal) => {
        impl IntoInclusive<$t> for std::ops::Range<$t> {
            fn bounds(self) -> ($t, $t) {
                assert!(self.start < self.end, "empty range");
                (self.start, self.end - 1)
            }
        }
        impl IntoInclusive<$t> for std::ops::RangeInclusive<$t> {
            fn bounds(self) -> ($t, $t) {
                assert!(self.start() <= self.end(), "empty range");
                (*self.start(), *self.end())
            }
        }
        impl IntoInclusive<$t> for std::ops::RangeFull {
            fn bounds(self) -> ($t, $t) {
                (<$t>::MIN, <$t>::MAX)
            }
        }
        #[doc = $doc]
        pub fn $fn_name(range: impl IntoInclusive<$t>) -> impl Gen<$t> {
            let (lo, hi) = range.bounds();
            move |rng: &mut Xoshiro256pp, _size: usize| {
                if lo as u64 == 0 && hi as u128 == <$t>::MAX as u128 {
                    rng.next_u64() as $t
                } else {
                    let span = (hi as u64) - (lo as u64) + 1;
                    lo + (rng.gen_range(0u64..span) as $t)
                }
            }
        }
    };
}

int_gen!(
    u8s,
    u8,
    "Uniform `u8` in the given range (`..` for the full domain)."
);
int_gen!(
    u16s,
    u16,
    "Uniform `u16` in the given range (`..` for the full domain)."
);
int_gen!(
    u32s,
    u32,
    "Uniform `u32` in the given range (`..` for the full domain)."
);
int_gen!(
    u64s,
    u64,
    "Uniform `u64` in the given range (`..` for the full domain)."
);
int_gen!(
    usizes,
    usize,
    "Uniform `usize` in the given range (`..` for the full domain)."
);

/// Uniform `f64` in the half-open range.
pub fn f64s(range: std::ops::Range<f64>) -> impl Gen<f64> {
    move |rng: &mut Xoshiro256pp, _size: usize| rng.gen_range(range.start..range.end)
}

/// A fair coin.
pub fn bools() -> impl Gen<bool> {
    |rng: &mut Xoshiro256pp, _size: usize| rng.next_u64() & 1 == 1
}

/// Always the same value.
pub fn just<T: Clone>(value: T) -> impl Gen<T> {
    move |_rng: &mut Xoshiro256pp, _size: usize| value.clone()
}

/// Uniform `char` in the inclusive code-point range.
pub fn char_range(lo: char, hi: char) -> impl Gen<char> {
    assert!(lo <= hi, "empty char range");
    move |rng: &mut Xoshiro256pp, _size: usize| loop {
        let cp = rng.gen_range(lo as u32..hi as u32 + 1);
        if let Some(c) = char::from_u32(cp) {
            return c; // skips the surrogate gap
        }
    }
}

/// Length specifications for collection generators: an exact `usize`, a
/// half-open `Range`, or an inclusive `RangeInclusive`.
pub trait LenRange {
    /// The `(lo, hi)` inclusive length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl LenRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl LenRange for std::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty length range");
        (self.start, self.end - 1)
    }
}

impl LenRange for std::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty length range");
        (*self.start(), *self.end())
    }
}

fn pick_len(rng: &mut Xoshiro256pp, len: &impl LenRange, size: usize) -> usize {
    let (lo, hi) = len.bounds();
    // The size budget caps how far above the minimum a length may go —
    // exact lengths (lo == hi) are honoured at every size.
    let hi = lo.max(hi.min(lo.saturating_add(size)));
    if lo == hi {
        lo
    } else {
        rng.gen_range(lo..hi + 1)
    }
}

/// A vector of `len` elements drawn from `g`.
pub fn vec_of<T>(g: impl Gen<T>, len: impl LenRange) -> impl Gen<Vec<T>> {
    move |rng: &mut Xoshiro256pp, size: usize| {
        let n = pick_len(rng, &len, size);
        (0..n).map(|_| g.generate(rng, size)).collect()
    }
}

/// A fixed-size array of elements drawn from `g`.
pub fn array_of<T, const N: usize>(g: impl Gen<T>) -> impl Gen<[T; N]> {
    move |rng: &mut Xoshiro256pp, size: usize| std::array::from_fn(|_| g.generate(rng, size))
}

/// A `String` of `len` chars drawn from `g`.
pub fn string_of(g: impl Gen<char>, len: impl LenRange) -> impl Gen<String> {
    move |rng: &mut Xoshiro256pp, size: usize| {
        let n = pick_len(rng, &len, size);
        (0..n).map(|_| g.generate(rng, size)).collect()
    }
}

/// A `BTreeSet` of exactly `count` distinct elements. Panics if `g`
/// cannot produce that many distinct values in a reasonable number of
/// draws.
pub fn set_of<T: Ord>(g: impl Gen<T>, count: usize) -> impl Gen<BTreeSet<T>> {
    move |rng: &mut Xoshiro256pp, size: usize| {
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < count {
            out.insert(g.generate(rng, size));
            attempts += 1;
            assert!(
                attempts < count * 1000 + 100,
                "set_of: could not draw {count} distinct values"
            );
        }
        out
    }
}

/// Transform generated values.
pub fn map<A, B>(g: impl Gen<A>, f: impl Fn(A) -> B) -> impl Gen<B> {
    move |rng: &mut Xoshiro256pp, size: usize| f(g.generate(rng, size))
}

/// Keep only values `f` accepts, retrying generation. Panics (failing the
/// property run) after 100 consecutive rejections — make generators
/// mostly-accepting, as with proptest.
pub fn filter_map<A, B>(
    g: impl Gen<A>,
    f: impl Fn(A) -> Option<B>,
    what: &'static str,
) -> impl Gen<B> {
    move |rng: &mut Xoshiro256pp, size: usize| {
        for _ in 0..100 {
            if let Some(b) = f(g.generate(rng, size)) {
                return b;
            }
        }
        panic!("filter_map: '{what}' rejected 100 candidates in a row");
    }
}

/// Keep only values satisfying `pred` (see [`filter_map`]).
pub fn filter<T>(g: impl Gen<T>, pred: impl Fn(&T) -> bool, what: &'static str) -> impl Gen<T> {
    move |rng: &mut Xoshiro256pp, size: usize| {
        for _ in 0..100 {
            let v = g.generate(rng, size);
            if pred(&v) {
                return v;
            }
        }
        panic!("filter: '{what}' rejected 100 candidates in a row");
    }
}

/// Draw from one of the choices, uniformly.
pub fn one_of<T>(choices: Vec<BoxGen<T>>) -> impl Gen<T> {
    assert!(!choices.is_empty(), "one_of: no choices");
    move |rng: &mut Xoshiro256pp, size: usize| {
        let i = rng.gen_range(0..choices.len());
        choices[i].generate(rng, size)
    }
}

/// Draw from one of the choices with the given relative weights.
pub fn weighted<T>(choices: Vec<(f64, BoxGen<T>)>) -> impl Gen<T> {
    assert!(
        choices.iter().any(|(w, _)| *w > 0.0),
        "weighted: no positive weight"
    );
    move |rng: &mut Xoshiro256pp, size: usize| {
        let (_, g) = rng
            .choose_weighted(&choices, |(w, _)| *w)
            .expect("weighted: no positive weight");
        g.generate(rng, size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(42)
    }

    #[test]
    fn int_range_forms() {
        let mut r = rng();
        for _ in 0..2_000 {
            assert!((3..10).contains(&u8s(3..10).generate(&mut r, 0)));
            assert!((1..=20).contains(&u16s(1..=20).generate(&mut r, 0)));
            let _ = u64s(..).generate(&mut r, 0);
            assert!(u32s(7..8).generate(&mut r, 0) == 7);
        }
    }

    #[test]
    fn full_domain_hits_extremes_eventually() {
        let mut r = rng();
        let mut lo = false;
        let mut hi = false;
        for _ in 0..20_000 {
            let v = u8s(..).generate(&mut r, 0);
            lo |= v == 0;
            hi |= v == 255;
        }
        assert!(lo && hi);
    }

    #[test]
    fn vec_len_respects_bounds_and_size() {
        let mut r = rng();
        for size in [0usize, 3, 50] {
            for _ in 0..200 {
                let v = vec_of(u8s(..), 2..30).generate(&mut r, size);
                assert!(v.len() >= 2 && v.len() <= 29);
                assert!(v.len() <= 2 + size, "size budget respected");
            }
        }
        // Exact lengths ignore the budget.
        assert_eq!(vec_of(u8s(..), 20).generate(&mut r, 0).len(), 20);
    }

    #[test]
    fn set_of_exact_count() {
        let mut r = rng();
        let s = set_of(u16s(1..600), 6).generate(&mut r, 0);
        assert_eq!(s.len(), 6);
        assert!(s.iter().all(|&v| (1..600).contains(&v)));
    }

    #[test]
    fn string_and_char_ranges() {
        let mut r = rng();
        let s = string_of(char_range('a', 'z'), 1..=10).generate(&mut r, 30);
        assert!((1..=10).contains(&s.len()));
        assert!(s.chars().all(|c| c.is_ascii_lowercase()));
    }

    #[test]
    fn one_of_and_weighted_cover_choices() {
        let mut r = rng();
        let g = one_of(vec![boxed(just(1u8)), boxed(just(2u8))]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[g.generate(&mut r, 0) as usize] = true;
        }
        assert!(seen[1] && seen[2]);

        let g = weighted(vec![(9.0, boxed(just('x'))), (1.0, boxed(just('y')))]);
        let xs = (0..5_000).filter(|_| g.generate(&mut r, 0) == 'x').count();
        assert!((4_200..4_800).contains(&xs), "≈90 % x: {xs}");
    }

    #[test]
    fn map_filter_array() {
        let mut r = rng();
        let g = map(u8s(0..10), |v| v * 2);
        for _ in 0..100 {
            assert_eq!(g.generate(&mut r, 0) % 2, 0);
        }
        let g = filter(u8s(..), |v| v % 2 == 1, "odd");
        for _ in 0..100 {
            assert_eq!(g.generate(&mut r, 0) % 2, 1);
        }
        let a: [u8; 4] = array_of(u8s(..)).generate(&mut r, 0);
        assert_eq!(a.len(), 4);
    }

    #[test]
    #[should_panic(expected = "rejected 100 candidates")]
    fn impossible_filter_panics() {
        let mut r = rng();
        let g = filter(u8s(..), |_| false, "nothing");
        let _ = g.generate(&mut r, 0);
    }
}
