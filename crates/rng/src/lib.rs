//! The workspace's own deterministic random-number generator — the
//! substitute for the external `rand` crate, keeping the build 100 %
//! offline and every simulation bit-reproducible by seed.
//!
//! * [`Xoshiro256pp`] — xoshiro256++ (Blackman & Vigna), the workhorse
//!   generator: 256-bit state, fast, and with well-studied statistical
//!   quality. Seeded from a single `u64` through [`SplitMix64`] exactly as
//!   the reference implementation recommends.
//! * [`Rng`] — the sampling surface every consumer programs against:
//!   uniform ranges, booleans, floats, Fisher–Yates [`Rng::shuffle`],
//!   [`Rng::choose`]/[`Rng::choose_weighted`], and exponential jitter for
//!   latency models.
//!
//! # Seed-threading convention
//!
//! Nothing in this workspace ever seeds itself from the environment.
//! Every randomized component takes an explicit `u64` seed from its
//! caller and derives per-subsystem generators with
//! [`Xoshiro256pp::seed_from_u64`] (optionally XOR-ing a fixed
//! per-subsystem tag so two subsystems sharing a seed do not share a
//! stream). Two runs with the same seed are bit-identical; that is the
//! reproduction guarantee the experiments rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// SplitMix64 (Steele, Lea & Flood): a tiny, fast generator whose main
/// job here is turning one `u64` seed into well-mixed xoshiro state. The
/// reference xoshiro seeding procedure is exactly this.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a SplitMix64 stream at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the core generator (public domain reference by David
/// Blackman and Sebastiano Vigna). 2^256 − 1 period, passes BigCrush.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed from a single `u64` by taking four SplitMix64 outputs as the
    /// initial state — the reference-recommended procedure, and the one
    /// every call site in this workspace uses.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256pp {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Construct from an explicit 256-bit state. At least one word must
    /// be nonzero (the all-zero state is a fixed point).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256++ state must be nonzero"
        );
        Xoshiro256pp { s }
    }

    /// Derive an independent-for-practical-purposes child generator, used
    /// to give each test case or shard its own stream from one run seed.
    pub fn fork(&mut self) -> Self {
        Xoshiro256pp::seed_from_u64(self.next_u64())
    }
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A keyed pseudorandom **bijection** over `0..len`, evaluable in O(1)
/// per index — the random-access replacement for materialising a
/// Fisher–Yates shuffle of `0..len`.
///
/// Built as a 4-round Feistel network over the smallest balanced bit
/// width covering `len`, with cycle-walking to stay inside the domain:
/// if a round output lands at or beyond `len`, it is re-encrypted until
/// it falls inside. Because the underlying Feistel permutation is a
/// bijection on the padded power-of-two domain, cycle-walking preserves
/// bijectivity on `0..len` (Black & Rogaway, "Ciphers with Arbitrary
/// Finite Domains").
///
/// Population generation uses this to answer "which domain sits at
/// output position `i`?" without generating positions `0..i` first —
/// the property that makes sharded generation start mid-list.
#[derive(Clone, Copy, Debug)]
pub struct Permutation {
    len: u64,
    half_bits: u32,
    keys: [u64; 4],
}

impl Permutation {
    /// A permutation of `0..len` keyed by `key`. `len = 0` is allowed
    /// (the empty permutation; `apply` must then never be called).
    pub fn new(len: u64, key: u64) -> Self {
        let bits = 64 - len.saturating_sub(1).leading_zeros();
        let half_bits = bits.div_ceil(2).max(1);
        let mut sm = SplitMix64::new(key);
        Permutation {
            len,
            half_bits,
            keys: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Number of elements the permutation ranges over.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn round(&self, r: u64, key: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        SplitMix64::new(r ^ key).next_u64() & mask
    }

    fn encrypt(&self, x: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let mut left = (x >> self.half_bits) & mask;
        let mut right = x & mask;
        for &key in &self.keys {
            let next = left ^ self.round(right, key);
            left = right;
            right = next;
        }
        (left << self.half_bits) | right
    }

    /// The position `index` maps to. Panics if `index >= len`.
    pub fn apply(&self, index: u64) -> u64 {
        assert!(index < self.len, "Permutation::apply out of range");
        let mut x = self.encrypt(index);
        // Cycle-walk: the Feistel domain is the padded power of two, so
        // re-encrypt until we land back inside 0..len. Expected walk
        // length is < 4 because the padded domain is < 4·len.
        while x >= self.len {
            x = self.encrypt(x);
        }
        x
    }
}

/// Types that can be sampled uniformly from a half-open `lo..hi` range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `lo..hi`. Panics if the range is empty.
    fn sample<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let v = lo + next_f64(rng) * (hi - lo);
        // Floating rounding can land exactly on `hi`; clamp back inside.
        if v < hi {
            v
        } else {
            lo.max(prev_down(hi))
        }
    }
}

fn prev_down(x: f64) -> f64 {
    // Largest f64 strictly below a finite positive-or-negative x.
    if x == 0.0 {
        -f64::MIN_POSITIVE
    } else {
        let bits = x.to_bits();
        f64::from_bits(if x > 0.0 { bits - 1 } else { bits + 1 })
    }
}

/// Unbiased `0..span` via Lemire's multiply-shift rejection method
/// (`span == 0` means the full 64-bit range).
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

fn next_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits → uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The sampling interface. Only [`Rng::next_u64`] is required; everything
/// else derives from it, so any generator plugged in underneath yields
/// the same distributions.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        next_f64(self)
    }

    /// Uniform draw from the half-open range `r`. Panics on empty ranges.
    fn gen_range<T: SampleUniform>(&mut self, r: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, r.start, r.end)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            true
        } else if p <= 0.0 {
            false
        } else {
            next_f64(self) < p
        }
    }

    /// Fisher–Yates shuffle in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = bounded_u64(self, i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` if the slice is empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[bounded_u64(self, slice.len() as u64) as usize])
        }
    }

    /// An element chosen with probability proportional to `weight(item)`.
    /// Non-positive weights are never chosen; returns `None` if the slice
    /// is empty or all weights are non-positive.
    fn choose_weighted<'a, T, F>(&mut self, slice: &'a [T], weight: F) -> Option<&'a T>
    where
        F: Fn(&T) -> f64,
    {
        let total: f64 = slice.iter().map(|t| weight(t).max(0.0)).sum();
        // NaN totals (from NaN weights) must also bail out.
        if total.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return None;
        }
        let mut pick = next_f64(self) * total;
        let mut last = None;
        for item in slice {
            let w = weight(item).max(0.0);
            if w <= 0.0 {
                continue;
            }
            last = Some(item);
            if pick < w {
                return Some(item);
            }
            pick -= w;
        }
        last // floating-point slack lands on the last positive-weight item
    }

    /// An exponentially distributed jitter with the given mean — the
    /// standard model for network latency spread and retry backoff.
    fn exp_jitter(&mut self, mean: f64) -> f64 {
        assert!(mean >= 0.0, "exp_jitter: negative mean");
        -mean * (1.0 - next_f64(self)).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors for SplitMix64 computed from the published
    /// algorithm definition (the seed-0 head value 0xE220A8397B1DCDAF is
    /// the widely published test vector).
    #[test]
    fn splitmix64_reference_vectors() {
        let mut sm = SplitMix64::new(0);
        let head: Vec<u64> = (0..5).map(|_| sm.next_u64()).collect();
        assert_eq!(
            head,
            [
                0xE220A8397B1DCDAF,
                0x6E789E6AA1B965F4,
                0x06C45D188009454F,
                0xF88BB8A8724C81EC,
                0x1B39896A51A8749B,
            ]
        );
        let mut sm = SplitMix64::new(0x42);
        assert_eq!(sm.next_u64(), 0x2C1C719D2C17B759);
        assert_eq!(sm.next_u64(), 0xA211B519D9A09A1C);
        assert_eq!(sm.next_u64(), 0x747A952A1F10BFF5);
    }

    /// xoshiro256++ from the state {1, 2, 3, 4}, against outputs computed
    /// from the reference algorithm definition.
    #[test]
    fn xoshiro256pp_reference_vectors() {
        let mut rng = Xoshiro256pp::from_state([1, 2, 3, 4]);
        let head: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert_eq!(
            head,
            [
                0x0000000002800001,
                0x0000000003800067,
                0x000CC00003800067,
                0x000CC201994400B2,
                0x8012A2019AC433CD,
                0x8A69978ACDEE33BA,
                0xC271134733154ABD,
                0xAC2BA09179169E97,
            ]
        );
    }

    /// The u64-seeding path (SplitMix64 state fill) pinned end to end.
    #[test]
    fn seed_from_u64_pins_state_and_stream() {
        let rng = Xoshiro256pp::seed_from_u64(12345);
        assert_eq!(
            rng.s,
            [
                0x22118258A9D111A0,
                0x346EDCE5F713F8ED,
                0x1E9A57BC80E6721D,
                0x2D160E7E5C3F42CA
            ]
        );
        let mut rng = rng;
        let head: Vec<u64> = (0..6).map(|_| rng.next_u64()).collect();
        assert_eq!(
            head,
            [
                0x8D948A82DEF8A568,
                0x3477F953796702A0,
                0x15CAA2FCE6DB8D69,
                0x2CEF8853C20C6DD0,
                0x43FF3FFF9C039CD9,
                0xB9C18B4A72333287,
            ]
        );
    }

    #[test]
    fn same_seed_same_stream_different_seed_different_stream() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(7);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(7);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(8);
            (0..64).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_respects_bounds_across_types() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let v = rng.gen_range(0usize..1);
            assert_eq!(v, 0);
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f), "{f}");
        }
    }

    #[test]
    fn gen_range_covers_small_ranges_uniformly() {
        // Chi-square-ish sanity: 8 buckets, 80k draws, each bucket within
        // 5 % of the expected 10k.
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((9_500..=10_500).contains(&c), "bucket {i}: {c}");
        }
    }

    #[test]
    fn gen_bool_frequency_matches_probability() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        for &p in &[0.1, 0.5, 0.9] {
            let hits = (0..50_000).filter(|_| rng.gen_bool(p)).count() as f64;
            let rate = hits / 50_000.0;
            assert!((rate - p).abs() < 0.01, "p={p} observed {rate}");
        }
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(2.0));
        assert!(!rng.gen_bool(-1.0));
    }

    #[test]
    fn next_f64_is_half_open_unit() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for _ in 0..100_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            min = min.min(f);
            max = max.max(f);
        }
        assert!(min < 0.01 && max > 0.99, "range exercised: [{min}, {max}]");
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<u32>>(),
            "100 elements left in place"
        );
        // Seed-stable.
        let mut rng2 = Xoshiro256pp::seed_from_u64(11);
        let mut v2: Vec<u32> = (0..100).collect();
        rng2.shuffle(&mut v2);
        assert_eq!(v, v2);
    }

    #[test]
    fn choose_uniform_and_empty() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        assert_eq!(rng.choose::<u8>(&[]), None);
        let items = [10u8, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &v = rng.choose(&items).unwrap();
            seen[(v / 10 - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn weighted_choice_frequencies_within_tolerance() {
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let items = [("a", 70.0), ("b", 20.0), ("c", 10.0), ("zero", 0.0)];
        let trials = 100_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..trials {
            let (tag, _) = rng.choose_weighted(&items, |(_, w)| *w).unwrap();
            *counts.entry(*tag).or_insert(0u32) += 1;
        }
        assert_eq!(counts.get("zero"), None, "zero-weight item never chosen");
        for (tag, expected) in [("a", 0.70), ("b", 0.20), ("c", 0.10)] {
            let observed = *counts.get(tag).unwrap() as f64 / trials as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "{tag}: {observed} vs {expected}"
            );
        }
    }

    #[test]
    fn weighted_choice_degenerate_inputs() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        assert_eq!(rng.choose_weighted::<u8, _>(&[], |_| 1.0), None);
        assert_eq!(rng.choose_weighted(&[1u8, 2], |_| 0.0), None);
        assert_eq!(rng.choose_weighted(&[1u8, 2], |_| -3.0), None);
        assert_eq!(
            rng.choose_weighted(&[1u8, 2], |&v| f64::from(v == 2)),
            Some(&2)
        );
    }

    #[test]
    fn exp_jitter_mean_and_positivity() {
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let trials = 200_000;
        let mut sum = 0.0;
        for _ in 0..trials {
            let j = rng.exp_jitter(5.0);
            assert!(j >= 0.0);
            sum += j;
        }
        let mean = sum / trials as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert_eq!(rng.exp_jitter(0.0), 0.0);
    }

    #[test]
    fn fork_streams_diverge() {
        let mut parent = Xoshiro256pp::seed_from_u64(1);
        let mut a = parent.fork();
        let mut b = parent.fork();
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let _ = rng.gen_range(5u32..5);
    }

    #[test]
    fn permutation_is_a_bijection_for_awkward_lengths() {
        // Powers of two, one-off-powers, primes, and tiny domains.
        for len in [1u64, 2, 3, 4, 5, 7, 8, 9, 16, 17, 63, 64, 65, 97, 1000] {
            let perm = Permutation::new(len, 0xfeed);
            let mut seen = vec![false; len as usize];
            for i in 0..len {
                let j = perm.apply(i);
                assert!(j < len, "len {len}: {i} -> {j} out of range");
                assert!(!seen[j as usize], "len {len}: {j} hit twice");
                seen[j as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "len {len}: not surjective");
        }
    }

    #[test]
    fn permutation_is_keyed_and_deterministic() {
        let a = Permutation::new(500, 1);
        let b = Permutation::new(500, 1);
        let c = Permutation::new(500, 2);
        let va: Vec<u64> = (0..500).map(|i| a.apply(i)).collect();
        let vb: Vec<u64> = (0..500).map(|i| b.apply(i)).collect();
        let vc: Vec<u64> = (0..500).map(|i| c.apply(i)).collect();
        assert_eq!(va, vb, "same key, same permutation");
        assert_ne!(va, vc, "different key, different permutation");
        // And it actually scrambles: the identity would defeat the point.
        assert_ne!(va, (0..500).collect::<Vec<u64>>());
    }

    #[test]
    fn permutation_empty_and_len_accessors() {
        let empty = Permutation::new(0, 9);
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
        let one = Permutation::new(1, 9);
        assert_eq!(one.apply(0), 0);
        assert_eq!(one.len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn permutation_apply_out_of_range_panics() {
        Permutation::new(10, 3).apply(10);
    }
}
