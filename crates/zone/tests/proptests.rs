//! Property-based tests for the zone layer: NSEC3 chain invariants,
//! signing/verification round trips, and denial-proof soundness on
//! arbitrary zones and query names.

use sim_check::{gens, props, Gen};

use dns_wire::name::{Name, MAX_NAME_LEN};
use dns_wire::rdata::RData;
use dns_wire::record::Record;
use dns_wire::rrtype::RrType;
use dns_zone::denial::{nodata_proof, nxdomain_proof};
use dns_zone::nsec3hash::{
    nsec3_hash, nsec3_hash_batch, nsec3_hash_reference, nsec3_hash_wire, nsec3_hash_wire_batch,
    nsec3_hash_wire_reference, Nsec3HashCache, Nsec3Params,
};
use dns_zone::signer::{sign_zone, verify_rrsig, Denial, SignedZone, SignerConfig};
use dns_zone::Zone;

const NOW: u32 = 1_710_000_000;

fn label() -> impl Gen<String> {
    gens::string_of(gens::char_range('a', 'z'), 1..=10)
}

/// Names under the fixed apex `p.example.`.
fn in_zone_name() -> impl Gen<Name> {
    gens::filter_map(
        gens::vec_of(label(), 1..=3),
        |labels| {
            let rel = labels.join(".");
            Name::parse(&format!("{rel}.p.example.")).ok()
        },
        "too long",
    )
}

/// The iteration counts the issue's differential suite pins: the RFC 9276
/// recommendation (0), trivial chains, the paper's real-world tail (150,
/// 500), and the CVE-2023-50868 stress point (2500).
fn iterations_choice() -> impl Gen<u16> {
    gens::map(gens::usizes(0..=5), |i| [0u16, 1, 2, 150, 500, 2500][i])
}

fn params() -> impl Gen<Nsec3Params> {
    gens::map(
        (gens::u16s(0..30), gens::vec_of(gens::u8s(..), 0..12)),
        |(iterations, salt)| Nsec3Params::new(iterations, salt),
    )
}

fn build_signed(names: &[Name], params: Nsec3Params, opt_out: bool) -> SignedZone {
    let apex = Name::parse("p.example.").unwrap();
    let mut zone = Zone::new(apex.clone());
    zone.add(Record::new(
        apex.clone(),
        3600,
        RData::Soa {
            mname: Name::parse("ns1.p.example.").unwrap(),
            rname: Name::parse("host.p.example.").unwrap(),
            serial: 1,
            refresh: 7200,
            retry: 3600,
            expire: 1_209_600,
            minimum: 300,
        },
    ))
    .unwrap();
    for n in names {
        let _ = zone.add(Record::new(
            n.clone(),
            300,
            RData::A("192.0.2.1".parse().unwrap()),
        ));
    }
    sign_zone(
        &zone,
        &SignerConfig {
            denial: Denial::Nsec3 { params, opt_out },
            ..SignerConfig::standard(&apex, NOW)
        },
    )
    .unwrap()
}

props! {
    #![cases = 64]

    /// The NSEC3 chain partitions hash space: every possible hash is
    /// either an owner hash or covered by exactly one interval.
    fn nsec3_chain_partitions_hash_space(
        names in gens::vec_of(in_zone_name(), 1..10),
        probe in in_zone_name(),
        p in params(),
    ) {
        let signed = build_signed(&names, p.clone(), false);
        let h = nsec3_hash(&probe, &p).digest;
        let owners: Vec<[u8; 20]> = signed.nsec3_index.iter().map(|(x, _)| *x).collect();
        let is_owner = owners.contains(&h);
        // Count intervals covering h.
        let n = owners.len();
        let mut covering = 0;
        for i in 0..n {
            let (a, b) = (owners[i], owners[(i + 1) % n]);
            let covered = if a < b { a < h && h < b } else { h > a || h < b };
            if covered {
                covering += 1;
            }
        }
        if is_owner {
            assert_eq!(covering, 0, "owner hash must not also be covered");
        } else if n == 1 {
            // Single-record chains cover everything except the owner.
            assert_eq!(covering, 1);
        } else {
            assert_eq!(covering, 1, "exactly one covering interval");
        }
    }

    /// Every RRSIG the signer produces verifies against the matching key,
    /// regardless of zone contents.
    fn all_signatures_verify(
        names in gens::vec_of(in_zone_name(), 1..8),
        p in params(),
    ) {
        let signed = build_signed(&names, p, false);
        let owners: Vec<Name> = signed.zone.names().cloned().collect();
        for owner in owners {
            let sigs = match signed.zone.rrset(&owner, RrType::RRSIG) {
                Some(s) => s.to_vec(),
                None => continue,
            };
            for sig in sigs {
                let (covered, tag) = match &sig.rdata {
                    RData::Rrsig { type_covered, key_tag, .. } => (*type_covered, *key_tag),
                    _ => unreachable!(),
                };
                let rrset = signed.zone.rrset(&owner, covered).unwrap().to_vec();
                let key = signed
                    .keys
                    .iter()
                    .find(|k| k.key_tag() == tag)
                    .expect("signing key present");
                assert!(
                    verify_rrsig(&sig.rdata, &owner, &rrset, key.pair.public_key()),
                    "RRSIG over {} {} must verify",
                    owner,
                    covered
                );
            }
        }
    }

    /// For any name not in the zone, the NXDOMAIN proof synthesizes and
    /// passes resolver-side verification; for any name in the zone, the
    /// NODATA proof for an absent type does.
    fn denial_proofs_always_verify(
        names in gens::vec_of(in_zone_name(), 1..8),
        probe in in_zone_name(),
        p in params(),
        opt_out in gens::bools(),
    ) {
        let signed = build_signed(&names, p.clone(), opt_out);
        let apex = Name::parse("p.example.").unwrap();
        if signed.zone.name_exists(&probe) {
            if signed.zone.has_name(&probe) {
                let proof = nodata_proof(&signed, &probe).unwrap();
                assert!(!proof.records.is_empty());
            }
        } else {
            let proof = nxdomain_proof(&signed, &probe).unwrap();
            let nsec3s: Vec<&Record> = proof
                .records
                .iter()
                .filter(|r| r.rrtype() == RrType::NSEC3)
                .collect();
            assert!(!nsec3s.is_empty());
            // Resolver-side check must accept it.
            use dns_resolver::cost::CostMeter;
            use dns_resolver::validator::{parse_nsec3_set, verify_nxdomain};
            let (vp, views) = parse_nsec3_set(&nsec3s).unwrap();
            assert_eq!(&vp, &p);
            let meter = CostMeter::new();
            assert!(
                verify_nxdomain(&probe, &apex, &vp, &views, &meter).is_ok(),
                "NXDOMAIN proof for {} must verify",
                probe
            );
            // Cost is bounded by (labels + 2) chains of (iterations + 1)
            // hashes... loosely: it is nonzero and scales with params.
            assert!(meter.sha1_compressions() >= (p.iterations as u64 + 1) * 3);
        }
    }

    /// Any signed zone survives a print → parse round trip through the
    /// master-file format, record for record.
    fn zonefile_roundtrip_for_signed_zones(
        names in gens::vec_of(in_zone_name(), 1..8),
        p in params(),
        opt_out in gens::bools(),
    ) {
        use dns_zone::zonefile::{parse_zone, print_zone};
        let signed = build_signed(&names, p, opt_out);
        let text = print_zone(&signed.zone);
        let reparsed = parse_zone(&text, &Name::root()).expect("printed zone parses");
        assert_eq!(reparsed.len(), signed.zone.len());
        let a: Vec<String> = signed.zone.iter().map(|r| r.to_string()).collect();
        let b: Vec<String> = reparsed.iter().map(|r| r.to_string()).collect();
        assert_eq!(a, b);
    }

    /// Hashing is deterministic and 20 bytes, for any params.
    fn nsec3_hash_shape(n in in_zone_name(), p in params()) {
        let a = nsec3_hash(&n, &p);
        let b = nsec3_hash(&n, &p);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.compressions, b.compressions);
        assert!(a.compressions > p.iterations as u64);
    }

    /// The single-block fast engine is byte-identical to the streaming
    /// reference — digest *and* compressions — for any salt length in
    /// 0..=255 and the iteration counts the paper's cost model cares
    /// about. The compressions half pins the CVE-2023-50868 accounting:
    /// a faster engine must not change what work gets *counted*.
    fn fast_engine_is_byte_identical_to_reference(
        n in in_zone_name(),
        salt in gens::vec_of(gens::u8s(..), 0..=255),
        it in iterations_choice(),
    ) {
        let p = Nsec3Params::new(it, salt);
        let fast = nsec3_hash(&n, &p);
        let reference = nsec3_hash_reference(&n, &p);
        assert_eq!(fast.digest, reference.digest, "digest drift at salt_len={} it={}", p.salt.len(), it);
        assert_eq!(fast.compressions, reference.compressions, "cost-model drift at salt_len={} it={}", p.salt.len(), it);
        // The wire-slice API is the same function as the `&Name` wrapper.
        let mut wire = [0u8; MAX_NAME_LEN];
        let len = n.write_canonical_wire(&mut wire);
        assert_eq!(nsec3_hash_wire(&wire[..len], &p), fast);
        assert_eq!(nsec3_hash_wire_reference(&wire[..len], &p), reference);
    }

    /// The single/double-block boundary: salt length 35 is the largest
    /// where each iteration input (20 + salt ≤ 55 bytes) pads into one
    /// 64-byte block; 36 is the first that needs two. Both sides must
    /// agree with the reference for arbitrary iteration counts.
    fn single_block_boundary_is_exact(
        n in in_zone_name(),
        it in gens::u16s(0..=200),
        fill in gens::u8s(..),
    ) {
        for salt_len in [34usize, 35, 36, 37] {
            let p = Nsec3Params::new(it, vec![fill; salt_len]);
            let fast = nsec3_hash(&n, &p);
            let reference = nsec3_hash_reference(&n, &p);
            assert_eq!(fast.digest, reference.digest, "salt_len={salt_len} it={it}");
            assert_eq!(fast.compressions, reference.compressions, "salt_len={salt_len} it={it}");
            // Per-iteration block count is visible in the total: each
            // iteration adds one block at salt ≤ 35 and two at 36+.
            let per_iter = if salt_len <= 35 { 1 } else { 2 };
            let base = nsec3_hash(&n, &Nsec3Params::new(0, vec![fill; salt_len]));
            assert_eq!(
                fast.compressions,
                base.compressions + u64::from(it) * per_iter,
                "accounting must be exactly linear in iterations (salt_len={salt_len})"
            );
        }
    }

    /// denial_names is stable under opt-out: opting out only removes
    /// names, never adds.
    fn opt_out_shrinks_chain(names in gens::vec_of(in_zone_name(), 1..8)) {
        let apex = Name::parse("p.example.").unwrap();
        let mut zone = Zone::new(apex.clone());
        zone.add(Record::new(
            apex.clone(),
            3600,
            RData::Soa {
                mname: Name::parse("ns1.p.example.").unwrap(),
                rname: Name::parse("h.p.example.").unwrap(),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1_209_600,
                minimum: 300,
            },
        ))
        .unwrap();
        for (i, n) in names.iter().enumerate() {
            if i % 2 == 0 {
                let _ = zone.add(Record::new(n.clone(), 300, RData::A("192.0.2.1".parse().unwrap())));
            } else {
                // insecure delegation
                let _ = zone.add(Record::new(n.clone(), 300, RData::Ns(Name::parse("ns.other.").unwrap())));
            }
        }
        let full = zone.denial_names(false);
        let thin = zone.denial_names(true);
        assert!(thin.len() <= full.len());
        for n in &thin {
            assert!(full.contains(n));
        }
    }

    /// The batch entry points are byte-identical — digest *and*
    /// `compressions` — to per-name scalar hashing, for ragged batch sizes
    /// 1..=16, salt lengths across the 35→36 single/two-block template
    /// boundary, and the issue's full iteration set.
    fn batch_matches_scalar_per_name(
        names in gens::vec_of(in_zone_name(), 1..=16),
        salt_len in gens::usizes(0..=40),
        fill in gens::u8s(..),
        it in iterations_choice(),
    ) {
        let p = Nsec3Params::new(it, vec![fill; salt_len]);
        let batch = nsec3_hash_batch(&names, &p);
        assert_eq!(batch.len(), names.len());
        for (n, got) in names.iter().zip(&batch) {
            assert_eq!(*got, nsec3_hash(n, &p), "{n} salt_len={salt_len} it={it}");
        }
        // The wire-slice batch API is the same function as the `&Name` one.
        let wires: Vec<Vec<u8>> = names.iter().map(|n| n.to_canonical_wire()).collect();
        let refs: Vec<&[u8]> = wires.iter().map(|w| w.as_slice()).collect();
        assert_eq!(nsec3_hash_wire_batch(&refs, &p), batch);
    }

    /// The cache-partition path (probe for hits, hash misses multi-lane,
    /// insert) returns exactly the scalar answers no matter which subset
    /// of the batch is already cached — duplicates within a batch
    /// included — and a re-lookup replays identical results from cache.
    fn cache_batch_partition_matches_scalar(
        names in gens::vec_of(in_zone_name(), 1..=16),
        warm in gens::usizes(..),
        p in params(),
    ) {
        let cache = Nsec3HashCache::with_capacity_and_seed(64, 9);
        for (i, n) in names.iter().enumerate() {
            if warm & (1 << (i % 16)) != 0 {
                cache.lookup(n, &p);
            }
        }
        let got = cache.lookup_batch(&names, &p);
        for (n, g) in names.iter().zip(&got) {
            assert_eq!(*g, nsec3_hash(n, &p), "{n}");
        }
        assert_eq!(cache.lookup_batch(&names, &p), got, "cached replay");
    }
}

/// Exhaustive sweep of every legal salt length (the wire field is one
/// byte, so 0..=255) at cheap iteration counts, with the full issue
/// iteration set at the 35→36 single/double-block boundary. Deterministic
/// on purpose: the props above sample this space, this test *covers* it.
#[test]
fn fast_engine_matches_reference_for_every_salt_length() {
    let n = Name::parse("sweep.p.example.").unwrap();
    for salt_len in 0..=255usize {
        let salt: Vec<u8> = (0..salt_len).map(|i| (i * 7 + salt_len) as u8).collect();
        let iteration_set: &[u16] = if (35..=36).contains(&salt_len) {
            &[0, 1, 2, 150, 500, 2500]
        } else {
            &[0, 2]
        };
        for &it in iteration_set {
            let p = Nsec3Params::new(it, salt.clone());
            let fast = nsec3_hash(&n, &p);
            let reference = nsec3_hash_reference(&n, &p);
            assert_eq!(fast.digest, reference.digest, "salt_len={salt_len} it={it}");
            assert_eq!(
                fast.compressions, reference.compressions,
                "salt_len={salt_len} it={it}"
            );
        }
    }
}

/// The full RFC 5155 Appendix A vector set, fast engine vs streaming
/// reference vs the published base32 digests — all three must agree.
#[test]
fn fast_engine_matches_reference_on_rfc5155_appendix_a() {
    let p = Nsec3Params::new(12, vec![0xaa, 0xbb, 0xcc, 0xdd]);
    let vectors = [
        ("example.", "0p9mhaveqvm6t7vbl5lop2u3t2rp3tom"),
        ("a.example.", "35mthgpgcu1qg68fab165klnsnk3dpvl"),
        ("ai.example.", "gjeqe526plbf1g8mklp59enfd789njgi"),
        ("ns1.example.", "2t7b4g4vsa5smi47k61mv5bv1a22bojr"),
        ("ns2.example.", "q04jkcevqvmu85r014c7dkba38o0ji5r"),
        ("w.example.", "k8udemvp1j2f7eg6jebps17vp3n8i58h"),
        ("*.w.example.", "r53bq7cc2uvmubfu5ocmm6pers9tk9en"),
        ("x.w.example.", "b4um86eghhds6nea196smvmlo4ors995"),
        ("y.w.example.", "ji6neoaepv8b5o6k4ev33abha8ht9fgc"),
        ("x.y.w.example.", "2vptu5timamqttgl4luu9kg21e0aor3s"),
        ("xx.example.", "t644ebqk9bibcna874givr6joj62mlhv"),
    ];
    for (name_text, expected_b32) in vectors {
        let n = Name::parse(name_text).unwrap();
        let fast = nsec3_hash(&n, &p);
        let reference = nsec3_hash_reference(&n, &p);
        assert_eq!(fast, reference, "engines disagree on {name_text}");
        assert_eq!(
            dns_wire::base32::encode(&fast.digest),
            expected_b32,
            "published vector for {name_text}"
        );
    }
    // The same eleven vectors through the batch API in one call — the
    // interleaved lanes must reproduce the published digests too.
    let names: Vec<Name> = vectors
        .iter()
        .map(|(t, _)| Name::parse(t).unwrap())
        .collect();
    for (got, (name_text, expected_b32)) in nsec3_hash_batch(&names, &p).iter().zip(vectors) {
        assert_eq!(
            dns_wire::base32::encode(&got.digest),
            expected_b32,
            "batch lane for {name_text}"
        );
    }
}
