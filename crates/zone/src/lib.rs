//! DNS zones with DNSSEC: the authoritative-side substrate of the `heroes`
//! reproduction.
//!
//! * [`zone`] — the canonically-ordered zone model (RRsets, delegations,
//!   empty non-terminals, closest enclosers).
//! * [`nsec3hash`] — the RFC 5155 §5 hash with cost accounting, verified
//!   against the RFC's Appendix A vectors.
//! * [`signer`] — DNSKEY publication, NSEC/NSEC3 chain building, RRSIG
//!   generation and verification (shared signing buffer).
//! * [`denial`] — NXDOMAIN/NODATA/wildcard denial-of-existence proof
//!   synthesis.
//! * [`faults`] — misconfiguration injection (expired signatures,
//!   parameter desynchronization) for the paper's methodology.
//! * [`zonefile`] — master-file parsing/printing (the CZDS/AXFR format).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod denial;
pub mod faults;
pub mod nsec3hash;
pub mod signer;
pub mod zone;
pub mod zonefile;

pub use denial::{nodata_proof, nxdomain_proof, wildcard_expansion_proof, DenialKind, DenialProof};
pub use nsec3hash::{nsec3_hash, Nsec3Hash, Nsec3Params};
pub use signer::{sign_zone, verify_rrsig, Denial, SignedZone, SignerConfig, SigningKey};
pub use zone::Zone;
pub use zonefile::{parse_zone, print_zone, ParseError};

use dns_wire::name::Name;

/// Errors from zone construction, signing, or proof synthesis.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ZoneError {
    /// Record owner not under the zone apex.
    OutOfZone(Name),
    /// Attempted to sign with no keys configured.
    NoKeys,
    /// Attempted to sign an empty RRset.
    EmptyRrset,
    /// Expected RRSIG RDATA.
    NotAnRrsig,
    /// A constructed name exceeded DNS limits.
    NameTooLong,
    /// `qname` was not strictly below the closest encloser.
    NotBelowEncloser,
}

impl std::fmt::Display for ZoneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZoneError::OutOfZone(n) => write!(f, "record owner {n} is outside the zone"),
            ZoneError::NoKeys => f.write_str("no signing keys configured"),
            ZoneError::EmptyRrset => f.write_str("cannot sign an empty RRset"),
            ZoneError::NotAnRrsig => f.write_str("expected RRSIG rdata"),
            ZoneError::NameTooLong => f.write_str("constructed name exceeds 255 octets"),
            ZoneError::NotBelowEncloser => {
                f.write_str("query name is not below the closest encloser")
            }
        }
    }
}

impl std::error::Error for ZoneError {}
