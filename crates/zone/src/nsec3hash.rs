//! The NSEC3 hash computation (RFC 5155 §5) and its cost accounting.
//!
//! ```text
//! IH(salt, x, 0) = H(x || salt)
//! IH(salt, x, k) = H(IH(salt, x, k-1) || salt)   for k > 0
//! hash = IH(salt, owner-name-in-canonical-wire-form, iterations)
//! ```
//!
//! where `H` is SHA-1 (the only defined algorithm) and `iterations` is the
//! number of *additional* iterations — the parameter RFC 9276 item 2
//! requires to be zero, and the lever CVE-2023-50868 pulls.

use dns_crypto::sha1::Sha1;
use dns_crypto::Digest;
#[cfg(test)]
use dns_wire::base32;
use dns_wire::name::Name;
use dns_wire::rdata::{RData, NSEC3_HASH_SHA1};

/// Per-zone NSEC3 parameters, as carried in NSEC3PARAM and in every NSEC3
/// record of a zone.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Nsec3Params {
    /// Hash algorithm (1 = SHA-1; anything else is treated as unknown and
    /// the zone as insecure, per RFC 5155 §8.1).
    pub hash_alg: u8,
    /// Number of *additional* hash iterations.
    pub iterations: u16,
    /// Salt appended to the name (and every intermediate digest).
    pub salt: Vec<u8>,
}

impl Nsec3Params {
    /// The RFC 9276-compliant parameter set: SHA-1, zero additional
    /// iterations, empty salt ("1 0 0 -").
    pub fn rfc9276() -> Self {
        Nsec3Params {
            hash_alg: NSEC3_HASH_SHA1,
            iterations: 0,
            salt: Vec::new(),
        }
    }

    /// Arbitrary parameters (the populations in the wild).
    pub fn new(iterations: u16, salt: Vec<u8>) -> Self {
        Nsec3Params {
            hash_alg: NSEC3_HASH_SHA1,
            iterations,
            salt,
        }
    }

    /// Extract parameters from an NSEC3 or NSEC3PARAM RDATA.
    pub fn from_rdata(rdata: &RData) -> Option<Self> {
        match rdata {
            RData::Nsec3 {
                hash_alg,
                iterations,
                salt,
                ..
            }
            | RData::Nsec3Param {
                hash_alg,
                iterations,
                salt,
                ..
            } => Some(Nsec3Params {
                hash_alg: *hash_alg,
                iterations: *iterations,
                salt: salt.clone(),
            }),
            _ => None,
        }
    }

    /// Does this parameter set comply with RFC 9276 (items 2 and 3)?
    /// Item 2 (MUST, iterations == 0) and item 3 (SHOULD NOT, salt) are
    /// reported separately by the analysis crate; *full* compliance is both.
    pub fn rfc9276_compliant(&self) -> bool {
        self.iterations == 0 && self.salt.is_empty()
    }
}

impl Default for Nsec3Params {
    fn default() -> Self {
        Self::rfc9276()
    }
}

/// Result of hashing one name: the digest and what it cost.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Nsec3Hash {
    /// The 20-byte SHA-1 based NSEC3 hash.
    pub digest: [u8; 20],
    /// SHA-1 compression-function invocations spent computing it — the
    /// currency of CVE-2023-50868.
    pub compressions: u64,
}

/// Compute the NSEC3 hash of `name` under `params`.
///
/// The name is hashed in canonical (lowercased, uncompressed) wire form per
/// RFC 5155 §5.
pub fn nsec3_hash(name: &Name, params: &Nsec3Params) -> Nsec3Hash {
    let mut compressions = 0u64;
    let mut h = Sha1::new();
    h.update(&name.to_canonical_wire());
    h.update(&params.salt);
    compressions += h.padded_compressions();
    let mut digest = h.finalize_fixed();
    for _ in 0..params.iterations {
        let mut h = Sha1::new();
        h.update(&digest);
        h.update(&params.salt);
        compressions += h.padded_compressions();
        digest = h.finalize_fixed();
    }
    Nsec3Hash {
        digest,
        compressions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::name::name;

    /// RFC 5155 Appendix A: zone `example.`, salt `aabbccdd`, 12 additional
    /// iterations.
    fn appendix_a_params() -> Nsec3Params {
        Nsec3Params::new(12, vec![0xaa, 0xbb, 0xcc, 0xdd])
    }

    fn hash_b32(n: &str) -> String {
        base32::encode(&nsec3_hash(&name(n), &appendix_a_params()).digest)
    }

    #[test]
    fn rfc5155_appendix_a_vectors() {
        // Every (name, hash) pair published in RFC 5155 Appendix A.
        let vectors = [
            ("example.", "0p9mhaveqvm6t7vbl5lop2u3t2rp3tom"),
            ("a.example.", "35mthgpgcu1qg68fab165klnsnk3dpvl"),
            ("ai.example.", "gjeqe526plbf1g8mklp59enfd789njgi"),
            ("ns1.example.", "2t7b4g4vsa5smi47k61mv5bv1a22bojr"),
            ("ns2.example.", "q04jkcevqvmu85r014c7dkba38o0ji5r"),
            ("w.example.", "k8udemvp1j2f7eg6jebps17vp3n8i58h"),
            ("*.w.example.", "r53bq7cc2uvmubfu5ocmm6pers9tk9en"),
            ("x.w.example.", "b4um86eghhds6nea196smvmlo4ors995"),
            ("y.w.example.", "ji6neoaepv8b5o6k4ev33abha8ht9fgc"),
            ("x.y.w.example.", "2vptu5timamqttgl4luu9kg21e0aor3s"),
            ("xx.example.", "t644ebqk9bibcna874givr6joj62mlhv"),
        ];
        for (n, expected) in vectors {
            assert_eq!(hash_b32(n), expected, "hash of {n}");
        }
    }

    #[test]
    fn hash_is_case_insensitive() {
        let p = appendix_a_params();
        assert_eq!(
            nsec3_hash(&name("A.Example."), &p).digest,
            nsec3_hash(&name("a.example."), &p).digest
        );
    }

    #[test]
    fn zero_iterations_is_one_hash() {
        let p = Nsec3Params::rfc9276();
        let h = nsec3_hash(&name("example.com."), &p);
        // Short input: one compression.
        assert_eq!(h.compressions, 1);
    }

    #[test]
    fn compressions_scale_linearly_with_iterations() {
        let short_salt = Nsec3Params::new(100, vec![0xab; 4]);
        let h = nsec3_hash(&name("example.com."), &short_salt);
        // 1 initial + 100 iterations, each 20+4+9 = 33 bytes = 1 block.
        assert_eq!(h.compressions, 101);
        // A big salt forces 2 blocks per iteration: 20+64+9 = 93 bytes.
        let big_salt = Nsec3Params::new(100, vec![0xab; 64]);
        let h2 = nsec3_hash(&name("example.com."), &big_salt);
        assert_eq!(h2.compressions, 202);
        // The CVE's lever: cost ratio vs the RFC 9276 setting.
        let base = nsec3_hash(&name("example.com."), &Nsec3Params::rfc9276());
        assert!(h2.compressions / base.compressions >= 100);
    }

    #[test]
    fn salt_changes_hash() {
        let a = nsec3_hash(&name("x.example."), &Nsec3Params::new(0, vec![]));
        let b = nsec3_hash(&name("x.example."), &Nsec3Params::new(0, vec![1]));
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn iterations_change_hash() {
        let a = nsec3_hash(&name("x.example."), &Nsec3Params::new(0, vec![]));
        let b = nsec3_hash(&name("x.example."), &Nsec3Params::new(1, vec![]));
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn rfc9276_compliance_predicate() {
        assert!(Nsec3Params::rfc9276().rfc9276_compliant());
        assert!(!Nsec3Params::new(1, vec![]).rfc9276_compliant());
        assert!(!Nsec3Params::new(0, vec![1]).rfc9276_compliant());
    }

    #[test]
    fn params_from_rdata() {
        let rd = RData::Nsec3Param {
            hash_alg: 1,
            flags: 0,
            iterations: 5,
            salt: vec![9],
        };
        let p = Nsec3Params::from_rdata(&rd).unwrap();
        assert_eq!(p.iterations, 5);
        assert_eq!(p.salt, vec![9]);
        assert!(Nsec3Params::from_rdata(&RData::Txt(vec![])).is_none());
    }
}
