//! The NSEC3 hash computation (RFC 5155 §5) and its cost accounting.
//!
//! ```text
//! IH(salt, x, 0) = H(x || salt)
//! IH(salt, x, k) = H(IH(salt, x, k-1) || salt)   for k > 0
//! hash = IH(salt, owner-name-in-canonical-wire-form, iterations)
//! ```
//!
//! where `H` is SHA-1 (the only defined algorithm) and `iterations` is the
//! number of *additional* iterations — the parameter RFC 9276 item 2
//! requires to be zero, and the lever CVE-2023-50868 pulls.
//!
//! Two engines compute the same function:
//!
//! * [`nsec3_hash`] / [`nsec3_hash_wire`] — the fast path, built on
//!   [`dns_crypto::sha1::IteratedSha1`]: one prebuilt padded block per
//!   parameter set, no per-iteration hasher construction, no allocation for
//!   the canonical wire form.
//! * [`nsec3_hash_reference`] / [`nsec3_hash_wire_reference`] — the original
//!   streaming construction, kept as the differential-testing oracle
//!   (`crates/zone/tests/proptests.rs` pins byte identity and
//!   compression-count equality across salt lengths and iteration counts).
//!
//! [`Nsec3HashCache`] memoizes results across a signing run or a resolver's
//! closest-encloser search. Cache hits return the stored [`Nsec3Hash`]
//! verbatim — *including* its `compressions` count — so the CVE-2023-50868
//! cost model sees identical numbers whether or not a cache sat in front of
//! the engine.
//!
//! # Which entry point each layer should use
//!
//! Every entry point computes the same function; they differ in what they
//! amortize. Production code should take the highest row its call shape
//! allows; the plain uncached functions exist for the oracle tests, the
//! benches' scalar baselines, and one-off lookups.
//!
//! | entry point | amortizes | used by |
//! |---|---|---|
//! | [`Nsec3HashCache::lookup_wire_batch`] / [`nsec3_hash_wire_cached_batch`] | cache probe + multi-lane hashing of misses | signer denial pass, scanner walk candidates |
//! | [`nsec3_hash_wire_batch`] / [`nsec3_hash_batch`] | multi-lane hashing (no cache) | batch workloads with no reuse across calls |
//! | [`nsec3_hash_cached`] / [`nsec3_hash_wire_cached`] | per-thread memoization | validator closest-encloser loops, denial proof synthesis |
//! | [`nsec3_hash`] / [`nsec3_hash_wire`] | single-block engine only | tests, oracle comparisons, cold one-offs |

use std::cell::{Cell, RefCell};

use dns_crypto::sha1::{IteratedSha1, Sha1};
use dns_crypto::Digest;
#[cfg(test)]
use dns_wire::base32;
use dns_wire::name::{Name, MAX_NAME_LEN};
use dns_wire::rdata::{RData, NSEC3_HASH_SHA1};

/// Per-zone NSEC3 parameters, as carried in NSEC3PARAM and in every NSEC3
/// record of a zone.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Nsec3Params {
    /// Hash algorithm (1 = SHA-1; anything else is treated as unknown and
    /// the zone as insecure, per RFC 5155 §8.1).
    pub hash_alg: u8,
    /// Number of *additional* hash iterations.
    pub iterations: u16,
    /// Salt appended to the name (and every intermediate digest).
    pub salt: Vec<u8>,
}

impl Nsec3Params {
    /// The RFC 9276-compliant parameter set: SHA-1, zero additional
    /// iterations, empty salt ("1 0 0 -").
    pub fn rfc9276() -> Self {
        Nsec3Params {
            hash_alg: NSEC3_HASH_SHA1,
            iterations: 0,
            salt: Vec::new(),
        }
    }

    /// Arbitrary parameters (the populations in the wild).
    pub fn new(iterations: u16, salt: Vec<u8>) -> Self {
        Nsec3Params {
            hash_alg: NSEC3_HASH_SHA1,
            iterations,
            salt,
        }
    }

    /// Extract parameters from an NSEC3 or NSEC3PARAM RDATA.
    pub fn from_rdata(rdata: &RData) -> Option<Self> {
        match rdata {
            RData::Nsec3 {
                hash_alg,
                iterations,
                salt,
                ..
            }
            | RData::Nsec3Param {
                hash_alg,
                iterations,
                salt,
                ..
            } => Some(Nsec3Params {
                hash_alg: *hash_alg,
                iterations: *iterations,
                salt: salt.clone(),
            }),
            _ => None,
        }
    }

    /// Does this parameter set comply with RFC 9276 (items 2 and 3)?
    /// Item 2 (MUST, iterations == 0) and item 3 (SHOULD NOT, salt) are
    /// reported separately by the analysis crate; *full* compliance is both.
    pub fn rfc9276_compliant(&self) -> bool {
        self.iterations == 0 && self.salt.is_empty()
    }
}

impl Default for Nsec3Params {
    fn default() -> Self {
        Self::rfc9276()
    }
}

/// Result of hashing one name: the digest and what it cost.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Nsec3Hash {
    /// The 20-byte SHA-1 based NSEC3 hash.
    pub digest: [u8; 20],
    /// SHA-1 compression-function invocations spent computing it — the
    /// currency of CVE-2023-50868.
    pub compressions: u64,
}

/// Compute the NSEC3 hash of `name` under `params`.
///
/// The name is hashed in canonical (lowercased, uncompressed) wire form per
/// RFC 5155 §5. The wire form is written to a stack buffer and handed to the
/// single-block fast engine — no allocation on this path.
pub fn nsec3_hash(name: &Name, params: &Nsec3Params) -> Nsec3Hash {
    let mut buf = [0u8; MAX_NAME_LEN];
    let len = name.write_canonical_wire(&mut buf);
    nsec3_hash_wire(&buf[..len], params)
}

/// Compute the NSEC3 hash of a name already in canonical wire form.
///
/// Callers that hold wire bytes (the signer, zone walking) skip the
/// per-call canonical-wire conversion entirely.
pub fn nsec3_hash_wire(wire: &[u8], params: &Nsec3Params) -> Nsec3Hash {
    let engine = IteratedSha1::new(&params.salt);
    let (digest, compressions) = engine.hash(wire, params.iterations);
    Nsec3Hash {
        digest,
        compressions,
    }
}

/// Compute NSEC3 hashes for a batch of canonical-wire names, driving the
/// misses-free batch through [`IteratedSha1::hash_batch`]'s interleaved
/// lanes. `out[i]` is byte-identical (digest *and* `compressions`) to
/// [`nsec3_hash_wire`]`(wires[i], params)`.
pub fn nsec3_hash_wire_batch(wires: &[&[u8]], params: &Nsec3Params) -> Vec<Nsec3Hash> {
    let engine = IteratedSha1::new(&params.salt);
    engine
        .hash_batch(wires, params.iterations)
        .into_iter()
        .map(|(digest, compressions)| Nsec3Hash {
            digest,
            compressions,
        })
        .collect()
}

/// [`nsec3_hash_wire_batch`] over [`Name`]s: canonical wire forms are packed
/// into one arena (no per-name allocation) and hashed multi-lane.
pub fn nsec3_hash_batch(names: &[Name], params: &Nsec3Params) -> Vec<Nsec3Hash> {
    let (arena, ends) = pack_canonical_wires(names);
    let wires = unpack_spans(&arena, &ends);
    nsec3_hash_wire_batch(&wires, params)
}

/// Pack canonical wire forms contiguously; returns the arena and each
/// name's end offset (entry `i` spans `ends[i-1]..ends[i]`). `pub(crate)`
/// so batch consumers holding non-`Name` collections (the signer's denial
/// entries) can pack without cloning names into a temporary `Vec`.
pub(crate) fn pack_canonical_wires<'a, I>(names: I) -> (Vec<u8>, Vec<usize>)
where
    I: IntoIterator<Item = &'a Name>,
{
    let iter = names.into_iter();
    let hint = iter.size_hint().0;
    let mut arena = Vec::with_capacity(hint * 24);
    let mut ends = Vec::with_capacity(hint);
    let mut buf = [0u8; MAX_NAME_LEN];
    for name in iter {
        let len = name.write_canonical_wire(&mut buf);
        arena.extend_from_slice(&buf[..len]);
        ends.push(arena.len());
    }
    (arena, ends)
}

pub(crate) fn unpack_spans<'a>(arena: &'a [u8], ends: &[usize]) -> Vec<&'a [u8]> {
    let mut start = 0;
    ends.iter()
        .map(|&end| {
            let span = &arena[start..end];
            start = end;
            span
        })
        .collect()
}

/// The streaming reference implementation of [`nsec3_hash`]: a fresh
/// [`Sha1`] per step, exactly as RFC 5155 §5 writes the recurrence. Kept as
/// the oracle for differential tests and the CI perf-correctness smoke.
pub fn nsec3_hash_reference(name: &Name, params: &Nsec3Params) -> Nsec3Hash {
    nsec3_hash_wire_reference(&name.to_canonical_wire(), params)
}

/// Streaming reference over canonical wire bytes (see
/// [`nsec3_hash_reference`]).
pub fn nsec3_hash_wire_reference(wire: &[u8], params: &Nsec3Params) -> Nsec3Hash {
    let mut compressions = 0u64;
    let mut h = Sha1::new();
    h.update(wire);
    h.update(&params.salt);
    compressions += h.padded_compressions();
    let mut digest = h.finalize_fixed();
    for _ in 0..params.iterations {
        let mut h = Sha1::new();
        h.update(&digest);
        h.update(&params.salt);
        compressions += h.padded_compressions();
        digest = h.finalize_fixed();
    }
    Nsec3Hash {
        digest,
        compressions,
    }
}

/// A bounded, seeded memo table for NSEC3 hashes, keyed by
/// `(hash algorithm, canonical wire name, salt, iterations)`.
///
/// The table is direct-mapped with power-of-two capacity and
/// **deterministic eviction**: a colliding insert overwrites the slot
/// (newest wins), with one cost-aware carve-out — an entry computed under
/// RFC 9276-compliant parameters (zero iterations, empty salt: one
/// compression to recompute) is never evicted by a non-compliant insert.
/// An adversarial flood of distinct max-iteration names therefore cannot
/// purge the cheap entries legitimate traffic relies on; expensive entries
/// compete only for slots cheap traffic is not using. The rule depends
/// only on the insert sequence, so replays stay deterministic. Slot
/// selection hashes the full key with an FNV-1a/
/// SplitMix-style mix salted by `seed`, and a lookup compares the complete
/// key bytes, so a hit can never return the hash of a different name — the
/// byte-identity contract of `tests/determinism.rs` does not bend for cache
/// collisions.
///
/// A hit returns the stored [`Nsec3Hash`] verbatim, `compressions`
/// included: the cost model (CVE-2023-50868) observes identical totals with
/// or without the cache, which only ever changes wall-clock time.
pub struct Nsec3HashCache {
    slots: RefCell<Vec<Option<CacheEntry>>>,
    mask: usize,
    seed: u64,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

struct CacheEntry {
    /// `hash_alg || canonical wire || salt`. The wire form is
    /// self-delimiting (it ends at its root label), so the concatenation is
    /// unambiguous.
    key: Box<[u8]>,
    iterations: u16,
    hash: Nsec3Hash,
    /// Computed under RFC 9276-compliant parameters — protected from
    /// eviction by non-compliant (expensive) inserts.
    cheap: bool,
}

/// Longest cacheable key: algorithm byte + maximal wire name + maximal salt.
const MAX_KEY_LEN: usize = 1 + MAX_NAME_LEN + 255;

impl Nsec3HashCache {
    /// Default slot count (a power of two).
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// A cache with [`Nsec3HashCache::DEFAULT_CAPACITY`] slots and a fixed
    /// seed.
    pub fn new() -> Self {
        Self::with_capacity_and_seed(Self::DEFAULT_CAPACITY, 0x9276_5155)
    }

    /// A cache with `capacity` slots (rounded up to a power of two, minimum
    /// 1) whose slot mapping is salted by `seed`.
    pub fn with_capacity_and_seed(capacity: usize, seed: u64) -> Self {
        let cap = capacity.max(1).next_power_of_two();
        Nsec3HashCache {
            slots: RefCell::new((0..cap).map(|_| None).collect()),
            mask: cap - 1,
            seed,
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// Hash `name` under `params`, memoized.
    pub fn lookup(&self, name: &Name, params: &Nsec3Params) -> Nsec3Hash {
        let mut buf = [0u8; MAX_NAME_LEN];
        let len = name.write_canonical_wire(&mut buf);
        self.lookup_wire(&buf[..len], params)
    }

    /// Hash a canonical-wire name under `params`, memoized.
    pub fn lookup_wire(&self, wire: &[u8], params: &Nsec3Params) -> Nsec3Hash {
        let key_len = 1 + wire.len() + params.salt.len();
        if key_len > MAX_KEY_LEN {
            // Oversized (non-protocol) input: compute without caching.
            return nsec3_hash_wire(wire, params);
        }
        let mut key_buf = [0u8; MAX_KEY_LEN];
        key_buf[0] = params.hash_alg;
        key_buf[1..1 + wire.len()].copy_from_slice(wire);
        key_buf[1 + wire.len()..key_len].copy_from_slice(&params.salt);
        let key = &key_buf[..key_len];
        let idx = self.slot(key, params.iterations);
        let mut slots = self.slots.borrow_mut();
        if let Some(entry) = &slots[idx] {
            if entry.iterations == params.iterations && entry.key.as_ref() == key {
                self.hits.set(self.hits.get() + 1);
                return entry.hash;
            }
        }
        let hash = nsec3_hash_wire(wire, params);
        self.misses.set(self.misses.get() + 1);
        let cheap = params.rfc9276_compliant();
        if cheap || !slots[idx].as_ref().is_some_and(|e| e.cheap) {
            slots[idx] = Some(CacheEntry {
                key: key.into(),
                iterations: params.iterations,
                hash,
                cheap,
            });
        }
        hash
    }

    /// Hash a batch of names under `params`, memoized (see
    /// [`Nsec3HashCache::lookup_wire_batch`]).
    pub fn lookup_batch(&self, names: &[Name], params: &Nsec3Params) -> Vec<Nsec3Hash> {
        let (arena, ends) = pack_canonical_wires(names);
        let wires = unpack_spans(&arena, &ends);
        self.lookup_wire_batch(&wires, params)
    }

    /// Hash a batch of canonical-wire names under `params`, memoized: the
    /// batch is partitioned into cache hits and misses with one probe pass,
    /// the misses are hashed together through the interleaved lanes of
    /// [`IteratedSha1::hash_batch`], and the table is refilled.
    ///
    /// `out[i]` is byte-identical to [`Nsec3HashCache::lookup_wire`]
    /// `(wires[i], params)` — digest and `compressions` both. Hit/miss
    /// counters also match the scalar sequence, with one carve-out:
    /// duplicates of the same *uncached* name inside a single batch each
    /// count (and hash) as misses, where the scalar sequence would hit from
    /// the second occurrence on. Results are unaffected.
    pub fn lookup_wire_batch(&self, wires: &[&[u8]], params: &Nsec3Params) -> Vec<Nsec3Hash> {
        const PENDING: Nsec3Hash = Nsec3Hash {
            digest: [0; 20],
            compressions: 0,
        };
        let mut out = vec![PENDING; wires.len()];
        let mut miss_idx: Vec<u32> = Vec::new();
        {
            let slots = self.slots.borrow();
            let mut key_buf = [0u8; MAX_KEY_LEN];
            for (i, wire) in wires.iter().enumerate() {
                let key_len = 1 + wire.len() + params.salt.len();
                if key_len <= MAX_KEY_LEN {
                    key_buf[0] = params.hash_alg;
                    key_buf[1..1 + wire.len()].copy_from_slice(wire);
                    key_buf[1 + wire.len()..key_len].copy_from_slice(&params.salt);
                    let key = &key_buf[..key_len];
                    let idx = self.slot(key, params.iterations);
                    if let Some(entry) = &slots[idx] {
                        if entry.iterations == params.iterations && entry.key.as_ref() == key {
                            self.hits.set(self.hits.get() + 1);
                            out[i] = entry.hash;
                            continue;
                        }
                    }
                }
                miss_idx.push(i as u32);
            }
        }
        if miss_idx.is_empty() {
            return out;
        }
        let engine = IteratedSha1::new(&params.salt);
        let miss_wires: Vec<&[u8]> = miss_idx.iter().map(|&i| wires[i as usize]).collect();
        let hashed = engine.hash_batch(&miss_wires, params.iterations);
        let mut slots = self.slots.borrow_mut();
        let mut key_buf = [0u8; MAX_KEY_LEN];
        for (&i, (digest, compressions)) in miss_idx.iter().zip(hashed) {
            let wire = wires[i as usize];
            let hash = Nsec3Hash {
                digest,
                compressions,
            };
            out[i as usize] = hash;
            let key_len = 1 + wire.len() + params.salt.len();
            if key_len > MAX_KEY_LEN {
                // Oversized (non-protocol) input: computed, never cached or
                // counted — as in the scalar path.
                continue;
            }
            self.misses.set(self.misses.get() + 1);
            key_buf[0] = params.hash_alg;
            key_buf[1..1 + wire.len()].copy_from_slice(wire);
            key_buf[1 + wire.len()..key_len].copy_from_slice(&params.salt);
            let key = &key_buf[..key_len];
            let idx = self.slot(key, params.iterations);
            let cheap = params.rfc9276_compliant();
            if cheap || !slots[idx].as_ref().is_some_and(|e| e.cheap) {
                slots[idx] = Some(CacheEntry {
                    key: key.into(),
                    iterations: params.iterations,
                    hash,
                    cheap,
                });
            }
        }
        out
    }

    /// Lookups answered from the table.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups that had to run the engine (and then populated a slot).
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Drop every entry and reset the hit/miss counters.
    pub fn clear(&self) {
        for slot in self.slots.borrow_mut().iter_mut() {
            *slot = None;
        }
        self.hits.set(0);
        self.misses.set(0);
    }

    fn slot(&self, key: &[u8], iterations: u16) -> usize {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.seed;
        for &b in key {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= u64::from(iterations);
        // SplitMix-style avalanche so nearby keys spread across slots.
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        (h as usize) & self.mask
    }
}

impl Default for Nsec3HashCache {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    /// One cache per worker thread. Thread-locality keeps the sharded
    /// drivers coordination-free: shard output never depends on what any
    /// other thread has cached, so byte identity across `HEROES_THREADS`
    /// values is preserved by construction.
    static THREAD_CACHE: Nsec3HashCache = Nsec3HashCache::new();
}

/// [`nsec3_hash`] through this thread's shared [`Nsec3HashCache`].
pub fn nsec3_hash_cached(name: &Name, params: &Nsec3Params) -> Nsec3Hash {
    THREAD_CACHE.with(|c| c.lookup(name, params))
}

/// [`nsec3_hash_wire`] through this thread's shared [`Nsec3HashCache`].
pub fn nsec3_hash_wire_cached(wire: &[u8], params: &Nsec3Params) -> Nsec3Hash {
    THREAD_CACHE.with(|c| c.lookup_wire(wire, params))
}

/// [`Nsec3HashCache::lookup_wire_batch`] through this thread's shared
/// [`Nsec3HashCache`] — the entry point for batch consumers (signer shards,
/// scanner walks) that want memoization *and* multi-lane hashing.
pub fn nsec3_hash_wire_cached_batch(wires: &[&[u8]], params: &Nsec3Params) -> Vec<Nsec3Hash> {
    THREAD_CACHE.with(|c| c.lookup_wire_batch(wires, params))
}

/// [`Nsec3HashCache::lookup_batch`] through this thread's shared cache.
pub fn nsec3_hash_cached_batch(names: &[Name], params: &Nsec3Params) -> Vec<Nsec3Hash> {
    THREAD_CACHE.with(|c| c.lookup_batch(names, params))
}

/// `(hits, misses)` of this thread's shared cache — observability for
/// benches and tests.
pub fn thread_cache_stats() -> (u64, u64) {
    THREAD_CACHE.with(|c| (c.hits(), c.misses()))
}

/// Empty this thread's shared cache (cold-path measurements).
pub fn clear_thread_cache() {
    THREAD_CACHE.with(|c| c.clear());
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::name::name;

    /// RFC 5155 Appendix A: zone `example.`, salt `aabbccdd`, 12 additional
    /// iterations.
    fn appendix_a_params() -> Nsec3Params {
        Nsec3Params::new(12, vec![0xaa, 0xbb, 0xcc, 0xdd])
    }

    fn hash_b32(n: &str) -> String {
        base32::encode(&nsec3_hash(&name(n), &appendix_a_params()).digest)
    }

    #[test]
    fn rfc5155_appendix_a_vectors() {
        // Every (name, hash) pair published in RFC 5155 Appendix A.
        let vectors = [
            ("example.", "0p9mhaveqvm6t7vbl5lop2u3t2rp3tom"),
            ("a.example.", "35mthgpgcu1qg68fab165klnsnk3dpvl"),
            ("ai.example.", "gjeqe526plbf1g8mklp59enfd789njgi"),
            ("ns1.example.", "2t7b4g4vsa5smi47k61mv5bv1a22bojr"),
            ("ns2.example.", "q04jkcevqvmu85r014c7dkba38o0ji5r"),
            ("w.example.", "k8udemvp1j2f7eg6jebps17vp3n8i58h"),
            ("*.w.example.", "r53bq7cc2uvmubfu5ocmm6pers9tk9en"),
            ("x.w.example.", "b4um86eghhds6nea196smvmlo4ors995"),
            ("y.w.example.", "ji6neoaepv8b5o6k4ev33abha8ht9fgc"),
            ("x.y.w.example.", "2vptu5timamqttgl4luu9kg21e0aor3s"),
            ("xx.example.", "t644ebqk9bibcna874givr6joj62mlhv"),
        ];
        for (n, expected) in vectors {
            assert_eq!(hash_b32(n), expected, "hash of {n}");
        }
    }

    #[test]
    fn hash_is_case_insensitive() {
        let p = appendix_a_params();
        assert_eq!(
            nsec3_hash(&name("A.Example."), &p).digest,
            nsec3_hash(&name("a.example."), &p).digest
        );
    }

    #[test]
    fn zero_iterations_is_one_hash() {
        let p = Nsec3Params::rfc9276();
        let h = nsec3_hash(&name("example.com."), &p);
        // Short input: one compression.
        assert_eq!(h.compressions, 1);
    }

    #[test]
    fn compressions_scale_linearly_with_iterations() {
        let short_salt = Nsec3Params::new(100, vec![0xab; 4]);
        let h = nsec3_hash(&name("example.com."), &short_salt);
        // 1 initial + 100 iterations, each 20+4+9 = 33 bytes = 1 block.
        assert_eq!(h.compressions, 101);
        // A big salt forces 2 blocks per iteration: 20+64+9 = 93 bytes.
        let big_salt = Nsec3Params::new(100, vec![0xab; 64]);
        let h2 = nsec3_hash(&name("example.com."), &big_salt);
        assert_eq!(h2.compressions, 202);
        // The CVE's lever: cost ratio vs the RFC 9276 setting.
        let base = nsec3_hash(&name("example.com."), &Nsec3Params::rfc9276());
        assert!(h2.compressions / base.compressions >= 100);
    }

    #[test]
    fn salt_changes_hash() {
        let a = nsec3_hash(&name("x.example."), &Nsec3Params::new(0, vec![]));
        let b = nsec3_hash(&name("x.example."), &Nsec3Params::new(0, vec![1]));
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn iterations_change_hash() {
        let a = nsec3_hash(&name("x.example."), &Nsec3Params::new(0, vec![]));
        let b = nsec3_hash(&name("x.example."), &Nsec3Params::new(1, vec![]));
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn rfc9276_compliance_predicate() {
        assert!(Nsec3Params::rfc9276().rfc9276_compliant());
        assert!(!Nsec3Params::new(1, vec![]).rfc9276_compliant());
        assert!(!Nsec3Params::new(0, vec![1]).rfc9276_compliant());
    }

    #[test]
    fn fast_engine_matches_reference_on_appendix_a() {
        let p = appendix_a_params();
        for n in ["example.", "a.example.", "*.w.example.", "x.y.w.example."] {
            let n = name(n);
            assert_eq!(nsec3_hash(&n, &p), nsec3_hash_reference(&n, &p));
        }
    }

    #[test]
    fn wire_api_matches_name_api() {
        let p = Nsec3Params::new(7, vec![0xaa, 0xbb]);
        let n = name("MiXeD.Case.Example.");
        let wire = n.to_canonical_wire();
        assert_eq!(nsec3_hash_wire(&wire, &p), nsec3_hash(&n, &p));
        assert_eq!(
            nsec3_hash_wire_reference(&wire, &p),
            nsec3_hash_reference(&n, &p)
        );
    }

    #[test]
    fn cache_hit_returns_identical_hash_and_compressions() {
        let cache = Nsec3HashCache::with_capacity_and_seed(64, 1);
        let p = Nsec3Params::new(150, vec![0xab; 8]);
        let n = name("cached.example.");
        let miss = cache.lookup(&n, &p);
        let hit = cache.lookup(&n, &p);
        assert_eq!(miss, hit, "a hit must replay the miss byte for byte");
        assert_eq!(miss, nsec3_hash_reference(&n, &p));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn cache_distinguishes_params_and_names() {
        let cache = Nsec3HashCache::new();
        let n = name("x.example.");
        let a = cache.lookup(&n, &Nsec3Params::new(0, vec![]));
        let b = cache.lookup(&n, &Nsec3Params::new(1, vec![]));
        let c = cache.lookup(&n, &Nsec3Params::new(0, vec![1]));
        let d = cache.lookup(&name("y.example."), &Nsec3Params::new(0, vec![]));
        assert_ne!(a.digest, b.digest);
        assert_ne!(a.digest, c.digest);
        assert_ne!(a.digest, d.digest);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn tiny_cache_evicts_deterministically_and_stays_correct() {
        // A one-slot cache is pure eviction pressure: every entry fights for
        // the same slot, and results must still match the engine exactly.
        let cache = Nsec3HashCache::with_capacity_and_seed(1, 9);
        let p = Nsec3Params::rfc9276();
        for round in 0..3 {
            for i in 0..20 {
                let n = name(&format!("host{i}.example."));
                assert_eq!(cache.lookup(&n, &p), nsec3_hash(&n, &p), "round {round}");
            }
        }
        let (h1, m1) = (cache.hits(), cache.misses());
        // Replay from scratch: identical stats, because eviction depends
        // only on the insert sequence and the seed.
        let replay = Nsec3HashCache::with_capacity_and_seed(1, 9);
        for _ in 0..3 {
            for i in 0..20 {
                let n = name(&format!("host{i}.example."));
                replay.lookup(&n, &p);
            }
        }
        assert_eq!((replay.hits(), replay.misses()), (h1, m1));
    }

    #[test]
    fn adversarial_flood_cannot_evict_cheap_entries() {
        // Warm the cache with RFC 9276-compliant names (the census/signing
        // hot set), measure its steady-state hit pattern, then flood with
        // thousands of distinct max-iteration names — the CVE-2023-50868
        // access pattern. The flood must leave the cheap traffic's hit
        // pattern exactly as it was. (Warm names may collide with *each
        // other* in the direct-mapped table, so per-pass hit counts — not
        // "all 32 hit" — are the invariant.)
        let cache = Nsec3HashCache::with_capacity_and_seed(64, 5);
        let cheap = Nsec3Params::rfc9276();
        let warm: Vec<Name> = (0..32).map(|i| name(&format!("w{i}.example."))).collect();
        let warm_pass = |c: &Nsec3HashCache| {
            let before = c.hits();
            for n in &warm {
                assert_eq!(c.lookup(n, &cheap), nsec3_hash(n, &cheap));
            }
            c.hits() - before
        };
        warm_pass(&cache);
        let baseline_hits = warm_pass(&cache);
        assert!(baseline_hits > 0, "nothing resident after warming");
        let expensive = Nsec3Params::new(2500, vec![0x5a; 16]);
        for i in 0..512 {
            let n = name(&format!("atk{i}.attack.example."));
            // Results stay correct even when admission is refused.
            assert_eq!(cache.lookup(&n, &expensive), nsec3_hash(&n, &expensive));
        }
        assert_eq!(
            warm_pass(&cache),
            baseline_hits,
            "flood changed the cheap hit pattern"
        );
        // Control: without the admission rule this flood *would* purge the
        // table — show it displaces entries when the incumbents are also
        // expensive (newest-wins still applies among expensive entries).
        let atk0 = name("atk0.attack.example.");
        let (h0, m0) = (cache.hits(), cache.misses());
        cache.lookup(&atk0, &expensive);
        assert!(
            cache.hits() == h0 || cache.misses() == m0 + 1,
            "sanity: lookup neither hit nor missed"
        );
    }

    #[test]
    fn batch_inserts_respect_cheap_admission() {
        // Same protection through the batch refill path.
        let cache = Nsec3HashCache::with_capacity_and_seed(32, 11);
        let cheap = Nsec3Params::rfc9276();
        let warm: Vec<Name> = (0..16).map(|i| name(&format!("wb{i}.example."))).collect();
        let warm_pass = |c: &Nsec3HashCache| {
            let before = c.hits();
            for n in &warm {
                assert_eq!(c.lookup(n, &cheap), nsec3_hash(n, &cheap));
            }
            c.hits() - before
        };
        warm_pass(&cache);
        let baseline_hits = warm_pass(&cache);
        assert!(baseline_hits > 0);
        let expensive = Nsec3Params::new(500, vec![0xaa; 8]);
        let flood: Vec<Name> = (0..512)
            .map(|i| name(&format!("fb{i}.attack.example.")))
            .collect();
        let got = cache.lookup_batch(&flood, &expensive);
        for (n, g) in flood.iter().zip(&got) {
            assert_eq!(*g, nsec3_hash(n, &expensive));
        }
        assert_eq!(warm_pass(&cache), baseline_hits);
    }

    #[test]
    fn thread_cache_matches_uncached() {
        let p = Nsec3Params::new(5, vec![0xcd; 4]);
        let n = name("tls.example.");
        assert_eq!(nsec3_hash_cached(&n, &p), nsec3_hash(&n, &p));
        assert_eq!(nsec3_hash_cached(&n, &p), nsec3_hash(&n, &p));
        let wire = n.to_canonical_wire();
        assert_eq!(nsec3_hash_wire_cached(&wire, &p), nsec3_hash(&n, &p));
    }

    #[test]
    fn rfc5155_appendix_a_vectors_through_batch_api() {
        // The same eleven published vectors, in one batch call, through both
        // the uncached batch engine and the cache partition path.
        let p = appendix_a_params();
        let names: Vec<Name> = [
            "example.",
            "a.example.",
            "ai.example.",
            "ns1.example.",
            "ns2.example.",
            "w.example.",
            "*.w.example.",
            "x.w.example.",
            "y.w.example.",
            "x.y.w.example.",
            "xx.example.",
        ]
        .iter()
        .map(|n| name(n))
        .collect();
        let expected: Vec<Nsec3Hash> = names.iter().map(|n| nsec3_hash(n, &p)).collect();
        assert_eq!(nsec3_hash_batch(&names, &p), expected);
        let cache = Nsec3HashCache::with_capacity_and_seed(64, 3);
        assert_eq!(cache.lookup_batch(&names, &p), expected, "all misses");
        assert_eq!(cache.lookup_batch(&names, &p), expected, "all hits");
        assert_eq!((cache.hits(), cache.misses()), (11, 11));
    }

    #[test]
    fn batch_partition_mixes_hits_and_misses() {
        let p = Nsec3Params::new(13, vec![0xee; 6]);
        let cache = Nsec3HashCache::with_capacity_and_seed(256, 7);
        let warm: Vec<Name> = (0..5).map(|i| name(&format!("warm{i}.example."))).collect();
        for n in &warm {
            cache.lookup(n, &p);
        }
        let (h0, m0) = (cache.hits(), cache.misses());
        let batch: Vec<Name> = (0..12)
            .map(|i| {
                if i % 3 == 0 {
                    warm[i / 3].clone()
                } else {
                    name(&format!("cold{i}.example."))
                }
            })
            .collect();
        let got = cache.lookup_batch(&batch, &p);
        for (n, g) in batch.iter().zip(&got) {
            assert_eq!(*g, nsec3_hash(n, &p), "{n:?}");
        }
        assert_eq!(cache.hits() - h0, 4, "warm0/1/2/3 hit");
        assert_eq!(cache.misses() - m0, 8, "eight cold misses");
    }

    #[test]
    fn thread_cache_batch_matches_scalar() {
        let p = Nsec3Params::new(2, vec![0x11; 3]);
        let names: Vec<Name> = (0..9).map(|i| name(&format!("b{i}.example."))).collect();
        let wires: Vec<Vec<u8>> = names.iter().map(|n| n.to_canonical_wire()).collect();
        let refs: Vec<&[u8]> = wires.iter().map(|w| w.as_slice()).collect();
        let batch = nsec3_hash_wire_cached_batch(&refs, &p);
        let named = nsec3_hash_cached_batch(&names, &p);
        for ((n, a), b) in names.iter().zip(&batch).zip(&named) {
            assert_eq!(*a, nsec3_hash(n, &p));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn params_from_rdata() {
        let rd = RData::Nsec3Param {
            hash_alg: 1,
            flags: 0,
            iterations: 5,
            salt: vec![9],
        };
        let p = Nsec3Params::from_rdata(&rd).unwrap();
        assert_eq!(p.iterations, 5);
        assert_eq!(p.salt, vec![9]);
        assert!(Nsec3Params::from_rdata(&RData::Txt(vec![])).is_none());
    }
}
