//! Zone signing: DNSKEY publication, NSEC/NSEC3 chain construction, and
//! RRSIG generation (RFC 4034/4035/5155), over the SimSig scheme.

use dns_crypto::keytag::key_tag;
use dns_crypto::sha256::sha256;
use dns_crypto::simsig::{self, KeyPair};
use dns_wire::base32;
use dns_wire::buf::Writer;
use dns_wire::name::Name;
use dns_wire::rdata::{RData, NSEC3_FLAG_OPT_OUT};
use dns_wire::record::{canonical_rrset_order, Record};
use dns_wire::rrtype::RrType;
use dns_wire::typebitmap::TypeBitmap;

use crate::nsec3hash::{nsec3_hash_wire_cached_batch, Nsec3Params};
use crate::zone::Zone;
use crate::ZoneError;

/// Seed for the signer's [`sim_par::run_sharded`] calls. Signing is a pure
/// function of the zone and keys, so the seed only names the shard plan; it
/// never reaches an RNG.
const SIGNING_SHARD_SEED: u64 = 0x5155_9276;

/// Below this many work items a zone signs inline: the census populations
/// sign thousands of small zones from already-sharded worker threads, and
/// per-zone thread spawns would cost more than they save.
const SHARD_MIN_ITEMS: usize = 64;

fn shard_threads(items: usize, threads: usize) -> usize {
    if items < SHARD_MIN_ITEMS {
        return 1;
    }
    // Never run more workers than the host has execution units: the output
    // is byte-identical at every thread count (fixed contiguous shards,
    // index-order merge), so oversubscription buys nothing and costs spawn
    // and context-switch overhead — on a single-core host, asking for 4
    // threads used to make signing ~16% *slower* than 1.
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    threads.clamp(1, available)
}

/// DNSKEY flags value for a zone-signing key.
pub const FLAGS_ZSK: u16 = 256;
/// DNSKEY flags value for a key-signing key (SEP bit set).
pub const FLAGS_KSK: u16 = 257;

/// A signing key: the SimSig pair plus its DNSKEY presentation.
#[derive(Clone, Debug)]
pub struct SigningKey {
    /// The key material.
    pub pair: KeyPair,
    /// DNSKEY flags (256 = ZSK, 257 = KSK).
    pub flags: u16,
    /// Algorithm number stamped on DNSKEY/RRSIG records (a label only; the
    /// math is always SimSig — see `dns_crypto::simsig`).
    pub algorithm: u8,
}

impl SigningKey {
    /// Deterministic ZSK for a zone.
    pub fn zsk(apex: &Name) -> Self {
        SigningKey {
            pair: KeyPair::from_seed(format!("zsk:{apex}").as_bytes()),
            flags: FLAGS_ZSK,
            algorithm: simsig::SIMSIG_ALGORITHM,
        }
    }

    /// Deterministic KSK for a zone.
    pub fn ksk(apex: &Name) -> Self {
        SigningKey {
            pair: KeyPair::from_seed(format!("ksk:{apex}").as_bytes()),
            flags: FLAGS_KSK,
            algorithm: simsig::SIMSIG_ALGORITHM,
        }
    }

    /// The DNSKEY RDATA for this key.
    pub fn dnskey_rdata(&self) -> RData {
        RData::Dnskey {
            flags: self.flags,
            protocol: 3,
            algorithm: self.algorithm,
            public_key: self.pair.public_key().to_vec(),
        }
    }

    /// The RFC 4034 key tag of this key's DNSKEY RDATA.
    pub fn key_tag(&self) -> u16 {
        key_tag(&self.dnskey_rdata().canonical_bytes())
    }

    /// Is this a KSK (SEP flag)?
    pub fn is_ksk(&self) -> bool {
        self.flags & 0x0001 != 0
    }
}

/// Build `count` decoy DNSKEY RDATAs whose key tags all collide with the
/// zone's real ZSK tag — the KeyTrap ingredient (arXiv 2406.03133).
///
/// Each decoy carries a full-length public key (so a validator actually
/// runs — and fails — the verification instead of rejecting the key by
/// shape) derived deterministically from the apex and index, with the last
/// two bytes tuned via [`dns_crypto::keytag::colliding_tail`]. Colliding
/// with the ZSK rather than the KSK maximizes damage: every RRSIG over
/// zone data names the ZSK tag, so every RRset validation tries all the
/// decoys, while the DS match keeping the chain of trust alive stays on
/// the untouched KSK.
pub fn decoy_dnskeys(apex: &Name, count: usize) -> Vec<RData> {
    let target = SigningKey::zsk(apex).key_tag();
    (0..count)
        .map(|i| {
            // Perturbation byte handles the (at most one) unreachable
            // residue per prefix; in practice the first attempt lands.
            for perturb in 0..=255u8 {
                let seed = sha256(format!("decoy:{i}:{perturb}:{apex}").as_bytes());
                let mut public_key = seed.to_vec();
                let rdata = RData::Dnskey {
                    flags: FLAGS_ZSK,
                    protocol: 3,
                    algorithm: simsig::SIMSIG_ALGORITHM,
                    public_key: public_key.clone(),
                };
                let canonical = rdata.canonical_bytes();
                let prefix = &canonical[..canonical.len() - 2];
                if let Some(tail) = dns_crypto::keytag::colliding_tail(prefix, target) {
                    let n = public_key.len();
                    public_key[n - 2..].copy_from_slice(&tail);
                    let rdata = RData::Dnskey {
                        flags: FLAGS_ZSK,
                        protocol: 3,
                        algorithm: simsig::SIMSIG_ALGORITHM,
                        public_key,
                    };
                    debug_assert_eq!(key_tag(&rdata.canonical_bytes()), target);
                    return rdata;
                }
            }
            unreachable!("no colliding tail over 256 prefixes");
        })
        .collect()
}

/// Which denial-of-existence mechanism a zone uses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Denial {
    /// Plain NSEC (RFC 4034).
    Nsec,
    /// Hashed denial (RFC 5155) with the given parameters.
    Nsec3 {
        /// Hash parameters (algorithm, iterations, salt).
        params: Nsec3Params,
        /// Whether NSEC3 records set the opt-out flag.
        opt_out: bool,
    },
}

impl Denial {
    /// NSEC3 with RFC 9276-compliant parameters and no opt-out.
    pub fn nsec3_rfc9276() -> Self {
        Denial::Nsec3 {
            params: Nsec3Params::rfc9276(),
            opt_out: false,
        }
    }
}

/// Signer configuration.
#[derive(Clone, Debug)]
pub struct SignerConfig {
    /// Keys; at least one. If both KSKs and ZSKs are present, the DNSKEY
    /// RRset is signed by KSKs and everything else by ZSKs; with a single
    /// kind, it signs everything.
    pub keys: Vec<SigningKey>,
    /// RRSIG inception (epoch seconds).
    pub inception: u32,
    /// RRSIG expiration (epoch seconds).
    pub expiration: u32,
    /// Denial mechanism.
    pub denial: Denial,
    /// Extra DNSKEY RDATAs published verbatim (no private halves, so they
    /// never sign anything) *ahead of* the real keys in the RRset. The
    /// adversarial workloads use [`decoy_dnskeys`] here to build
    /// colliding-keytag DNSKEY sets: a validator matching RRSIGs by tag
    /// tries every decoy before reaching the real key.
    pub extra_dnskeys: Vec<RData>,
}

impl SignerConfig {
    /// A conventional setup for `apex`: deterministic KSK+ZSK, validity
    /// `[now - 1h, now + 30d]`, NSEC3 per RFC 9276.
    pub fn standard(apex: &Name, now: u32) -> Self {
        SignerConfig {
            keys: vec![SigningKey::ksk(apex), SigningKey::zsk(apex)],
            inception: now.saturating_sub(3600),
            expiration: now + 30 * 86_400,
            denial: Denial::nsec3_rfc9276(),
            extra_dnskeys: Vec::new(),
        }
    }

    /// Same but with explicit NSEC3 parameters (the wild populations).
    pub fn with_nsec3(apex: &Name, now: u32, params: Nsec3Params, opt_out: bool) -> Self {
        SignerConfig {
            denial: Denial::Nsec3 { params, opt_out },
            ..Self::standard(apex, now)
        }
    }
}

/// A zone after signing: records plus the indexes servers need.
#[derive(Clone, Debug)]
pub struct SignedZone {
    /// The zone, now containing DNSKEY/RRSIG/NSEC(3)/NSEC3PARAM records.
    pub zone: Zone,
    /// The denial mechanism in force.
    pub denial: Denial,
    /// The signing keys (servers re-sign nothing; this supports DS export
    /// and test assertions).
    pub keys: Vec<SigningKey>,
    /// For NSEC3 zones: `(hash, nsec3-owner-name)` sorted by hash.
    pub nsec3_index: Vec<([u8; 20], Name)>,
}

impl SignedZone {
    /// DS records (digest type 2, SHA-256) for every KSK — what the parent
    /// zone publishes.
    pub fn ds_records(&self, ttl: u32) -> Vec<Record> {
        let apex = self.zone.apex().clone();
        self.keys
            .iter()
            .filter(|k| k.is_ksk())
            .map(|k| {
                let rdata = k.dnskey_rdata();
                let mut buf = apex.to_canonical_wire();
                buf.extend_from_slice(&rdata.canonical_bytes());
                Record::new(
                    apex.clone(),
                    ttl,
                    RData::Ds {
                        key_tag: key_tag(&rdata.canonical_bytes()),
                        algorithm: k.algorithm,
                        digest_type: 2,
                        digest: sha256(&buf).to_vec(),
                    },
                )
            })
            .collect()
    }

    /// The NSEC3 parameters, if this zone is NSEC3-signed.
    pub fn nsec3_params(&self) -> Option<&Nsec3Params> {
        match &self.denial {
            Denial::Nsec3 { params, .. } => Some(params),
            Denial::Nsec => None,
        }
    }
}

/// Build the RFC 4034 §3.1.8.1 signing buffer: RRSIG RDATA (sans signature)
/// followed by each RR in canonical form and order.
///
/// Shared verbatim by signer and validator, so any disagreement is a bug in
/// exactly one place.
pub fn signing_buffer(
    rrsig_fields: &RData,
    owner: &Name,
    records: &[Record],
) -> Result<Vec<u8>, ZoneError> {
    let (
        type_covered,
        algorithm,
        labels,
        original_ttl,
        expiration,
        inception,
        key_tag,
        signer_name,
    ) = match rrsig_fields {
        RData::Rrsig {
            type_covered,
            algorithm,
            labels,
            original_ttl,
            expiration,
            inception,
            key_tag,
            signer_name,
            ..
        } => (
            *type_covered,
            *algorithm,
            *labels,
            *original_ttl,
            *expiration,
            *inception,
            *key_tag,
            signer_name,
        ),
        _ => return Err(ZoneError::NotAnRrsig),
    };
    let mut out = Vec::new();
    let mut w = Writer::plain(&mut out);
    w.u16(type_covered.0);
    w.u8(algorithm);
    w.u8(labels);
    w.u32(original_ttl);
    w.u32(expiration);
    w.u32(inception);
    w.u16(key_tag);
    w.bytes(&signer_name.to_canonical_wire());
    // Single-record RRsets (the overwhelmingly common case) need no sort
    // and no clone.
    let sorted: Vec<Record>;
    let in_order: &[Record] = if records.len() <= 1 {
        records
    } else {
        sorted = {
            let mut s = records.to_vec();
            canonical_rrset_order(&mut s);
            s
        };
        &sorted
    };
    // RFC 4035 §5.3.2: if the RRSIG labels field is less than the owner's
    // label count, the owner is replaced by the wildcard-expanded source
    // (`*.<labels rightmost labels>`). The non-wildcard case writes the
    // owner from a stack buffer instead of cloning it.
    let mut owner_buf = [0u8; dns_wire::name::MAX_NAME_LEN];
    let owner_len = if (labels as usize) < significant_labels(owner) {
        effective_owner(owner, labels).write_canonical_wire(&mut owner_buf)
    } else {
        owner.write_canonical_wire(&mut owner_buf)
    };
    let owner_wire = &owner_buf[..owner_len];
    for rec in in_order {
        w.bytes(owner_wire);
        w.u16(rec.rrtype().0);
        w.u16(rec.class.0);
        w.u32(original_ttl);
        let rdata = rec.rdata.canonical_bytes();
        w.u16(rdata.len() as u16);
        w.bytes(&rdata);
    }
    Ok(out)
}

/// Owner name as covered by a signature with `labels`: either the owner
/// itself or the wildcard source it was expanded from.
fn effective_owner(owner: &Name, labels: u8) -> Name {
    let own = significant_labels(owner);
    if (labels as usize) < own {
        // Reconstruct *.<rightmost `labels` labels>.
        let mut n = owner.clone();
        while significant_labels(&n) > labels as usize {
            n = n.parent().expect("label count > 0");
        }
        n.prepend(b"*").expect("wildcard fits")
    } else {
        owner.clone()
    }
}

/// The RRSIG `labels` value for an owner: label count, not counting the
/// root or a leading `*`.
pub fn significant_labels(owner: &Name) -> usize {
    owner.label_count() - usize::from(owner.is_wildcard())
}

/// Sign one RRset with one key, producing the RRSIG record.
pub fn sign_rrset(
    records: &[Record],
    key: &SigningKey,
    signer_name: &Name,
    inception: u32,
    expiration: u32,
) -> Result<Record, ZoneError> {
    sign_rrset_with_tag(
        records,
        key,
        key.key_tag(),
        signer_name,
        inception,
        expiration,
    )
}

/// [`sign_rrset`] with the key tag precomputed. The tag is a pure function
/// of the DNSKEY RDATA, so whole-zone signing hoists it out of the per-RRset
/// loop instead of re-serializing the DNSKEY for every signature.
pub fn sign_rrset_with_tag(
    records: &[Record],
    key: &SigningKey,
    key_tag: u16,
    signer_name: &Name,
    inception: u32,
    expiration: u32,
) -> Result<Record, ZoneError> {
    sign_rrset_prepared(
        records,
        key,
        key_tag,
        &key.pair.signing_context(),
        signer_name,
        inception,
        expiration,
    )
}

/// [`sign_rrset_with_tag`] with the key's HMAC pad schedule precomputed as
/// well. Whole-zone signing derives one [`simsig::Context`] per key and
/// reuses it for every RRset.
fn sign_rrset_prepared(
    records: &[Record],
    key: &SigningKey,
    key_tag: u16,
    ctx: &simsig::Context,
    signer_name: &Name,
    inception: u32,
    expiration: u32,
) -> Result<Record, ZoneError> {
    let first = records.first().ok_or(ZoneError::EmptyRrset)?;
    let owner = &first.name;
    let fields = RData::Rrsig {
        type_covered: first.rrtype(),
        algorithm: key.algorithm,
        labels: significant_labels(owner) as u8,
        original_ttl: first.ttl,
        expiration,
        inception,
        key_tag,
        signer_name: signer_name.clone(),
        signature: Vec::new(),
    };
    let buffer = signing_buffer(&fields, owner, records)?;
    let signature = ctx.sign(&buffer);
    let rdata = match fields {
        RData::Rrsig {
            type_covered,
            algorithm,
            labels,
            original_ttl,
            expiration,
            inception,
            key_tag,
            signer_name,
            ..
        } => RData::Rrsig {
            type_covered,
            algorithm,
            labels,
            original_ttl,
            expiration,
            inception,
            key_tag,
            signer_name,
            signature,
        },
        _ => unreachable!(),
    };
    Ok(Record::new(owner.clone(), first.ttl, rdata))
}

/// Verify one RRSIG over an RRset against a DNSKEY public key.
///
/// Checks the cryptographic binding only; temporal validity and chain
/// placement are the resolver's job.
pub fn verify_rrsig(rrsig: &RData, owner: &Name, records: &[Record], public_key: &[u8]) -> bool {
    let signature = match rrsig {
        RData::Rrsig { signature, .. } => signature,
        _ => return false,
    };
    match signing_buffer(rrsig, owner, records) {
        Ok(buffer) => simsig::verify(public_key, &buffer, signature),
        Err(_) => false,
    }
}

/// Sign `zone` according to `config`, producing a [`SignedZone`].
///
/// Large zones shard NSEC3 hashing and RRSIG generation over
/// [`sim_par::run_sharded`] with the thread count from
/// [`sim_par::default_threads`] (the `HEROES_THREADS` environment variable);
/// the output is byte-identical at every thread count.
pub fn sign_zone(zone: &Zone, config: &SignerConfig) -> Result<SignedZone, ZoneError> {
    sign_zone_with_threads(zone, config, sim_par::default_threads())
}

/// [`sign_zone`] with an explicit worker-thread count.
///
/// Work splits into fixed contiguous shards merged in index order
/// (`sim-par`), and signatures are pure functions of the RRset and key, so
/// `threads = 1` and `threads = N` produce the same signed zone byte for
/// byte — pinned by `tests/determinism.rs`.
pub fn sign_zone_with_threads(
    zone: &Zone,
    config: &SignerConfig,
    threads: usize,
) -> Result<SignedZone, ZoneError> {
    if config.keys.is_empty() {
        return Err(ZoneError::NoKeys);
    }
    let apex = zone.apex().clone();
    let mut out = zone.clone();
    let dnskey_ttl = 3600;

    // 1. Publish DNSKEYs — decoys first, so a tag-matching validator
    // burns a verification attempt on each decoy before the real key.
    for rdata in &config.extra_dnskeys {
        out.add(Record::new(apex.clone(), dnskey_ttl, rdata.clone()))?;
    }
    for key in &config.keys {
        out.add(Record::new(apex.clone(), dnskey_ttl, key.dnskey_rdata()))?;
    }

    // 2. Build the denial chain.
    let negative_ttl = zone.negative_ttl();
    let mut nsec3_index = Vec::new();
    match &config.denial {
        Denial::Nsec3 { params, opt_out } => {
            // NSEC3PARAM at the apex (flags MUST be zero there, RFC 5155 §4.1.2).
            out.add(Record::new(
                apex.clone(),
                negative_ttl,
                RData::Nsec3Param {
                    hash_alg: params.hash_alg,
                    flags: 0,
                    iterations: params.iterations,
                    salt: params.salt.clone(),
                },
            ))?;
            // One canonical-order pass yields the chain members together
            // with their type lists and signability, so record assembly
            // below needs no per-name tree lookups.
            let entries = out.denial_entries(*opt_out);
            // Hash the denial names sharded; each shard packs its owner
            // names into one canonical-wire arena and feeds them through
            // the batched thread-cache entry point: hits replay memoized
            // digests (re-signing, key rollover), misses hash up to eight
            // SHA-1 lanes at a time.
            let digests: Vec<[u8; 20]> = sim_par::run_sharded(
                &entries,
                shard_threads(entries.len(), threads),
                SIGNING_SHARD_SEED,
                |_, slice| {
                    let (arena, ends) =
                        crate::nsec3hash::pack_canonical_wires(slice.iter().map(|e| &e.name));
                    let wires = crate::nsec3hash::unpack_spans(&arena, &ends);
                    nsec3_hash_wire_cached_batch(&wires, params)
                        .into_iter()
                        .map(|h| h.digest)
                        .collect()
                },
            );
            let mut hashed: Vec<([u8; 20], &crate::zone::DenialEntry)> =
                digests.into_iter().zip(entries.iter()).collect();
            hashed.sort_by_key(|a| a.0);
            let count = hashed.len();
            // Build the NSEC3 records sharded (owner-name construction,
            // type bitmaps, and RDATA assembly are per-entry pure reads of
            // `out`); only the chain-order merge into the zone is serial.
            let flags = if *opt_out { NSEC3_FLAG_OPT_OUT } else { 0 };
            let indices: Vec<usize> = (0..count).collect();
            let built: Vec<([u8; 20], Name, Record)> = sim_par::run_sharded(
                &indices,
                shard_threads(count, threads),
                SIGNING_SHARD_SEED ^ 2,
                |_, slice| {
                    slice
                        .iter()
                        .map(|&i| {
                            let (hash, entry) = &hashed[i];
                            let next = &hashed[(i + 1) % count].0;
                            let owner = apex
                                .prepend(base32::encode(hash).as_bytes())
                                .expect("base32 label fits");
                            let mut types = TypeBitmap::from_types(entry.types.iter().copied());
                            if entry.will_sign {
                                types.insert(RrType::RRSIG);
                            }
                            let record = Record::new(
                                owner.clone(),
                                negative_ttl,
                                RData::Nsec3 {
                                    hash_alg: params.hash_alg,
                                    flags,
                                    iterations: params.iterations,
                                    salt: params.salt.clone(),
                                    next_hashed: next.to_vec(),
                                    types,
                                },
                            );
                            (*hash, owner, record)
                        })
                        .collect()
                },
            );
            let mut chain: Vec<Record> = Vec::with_capacity(built.len());
            for (hash, owner, record) in built {
                chain.push(record);
                nsec3_index.push((hash, owner));
            }
            // The chain is sorted by hash, hence (base32hex) by owner:
            // merge it into the zone with one linear walk.
            out.merge_sorted_owners(chain)?;
            nsec3_index.sort_by_key(|a| a.0);
        }
        Denial::Nsec => {
            let names = out.denial_names(false);
            let count = names.len();
            for (i, owner) in names.iter().enumerate() {
                let next = names[(i + 1) % count].clone();
                let mut types = TypeBitmap::from_types(out.types_at(owner));
                types.insert(RrType::NSEC);
                // Every NSEC owner carries at least the RRSIG of its NSEC.
                types.insert(RrType::RRSIG);
                out.add(Record::new(
                    owner.clone(),
                    negative_ttl,
                    RData::Nsec { next, types },
                ))?;
            }
        }
    }

    // 3. Sign every authoritative RRset. Key tags and HMAC pad schedules
    // are hoisted (one DNSKEY serialization and one pad derivation per key,
    // not per RRset), the work list carries each RRset's record slice so
    // the signing shards never walk the zone tree, and every shard builds
    // its canonical signing buffers first, then signs them per key through
    // the interleaved batch HMAC engine.
    let signers: Vec<(&SigningKey, u16, simsig::Context)> = config
        .keys
        .iter()
        .map(|k| (k, k.key_tag(), k.pair.signing_context()))
        .collect();
    let kss_idx: Vec<usize> = (0..signers.len())
        .filter(|&i| signers[i].0.is_ksk())
        .collect();
    let zss_idx: Vec<usize> = (0..signers.len())
        .filter(|&i| !signers[i].0.is_ksk())
        .collect();
    // Canonical order visits a delegation point before everything beneath
    // it, so a running cut marker replaces the per-owner `is_occluded`
    // ancestor walk.
    let mut work: Vec<(&Name, RrType, &[Record])> = Vec::new();
    let mut cut: Option<&Name> = None;
    for (owner, types) in out.rrsets() {
        if let Some(c) = cut {
            if owner != c && owner.is_subdomain_of(c) {
                continue; // occluded
            }
            cut = None;
        }
        let is_delegation = owner != &apex && types.contains_key(&RrType::NS);
        if is_delegation {
            cut = Some(owner);
        }
        for (&rrtype, rrset) in types {
            // At a delegation point only the DS RRset is signed.
            if is_delegation && rrtype != RrType::DS {
                continue;
            }
            work.push((owner, rrtype, rrset.as_slice()));
        }
    }
    let signed: Vec<Result<Record, ZoneError>> = sim_par::run_sharded(
        &work,
        shard_threads(work.len(), threads),
        SIGNING_SHARD_SEED ^ 1,
        |_, slice| {
            // Phase 1: one RRSIG template and canonical signing buffer per
            // (RRset, key) pair, in work order.
            let mut slots: Vec<Result<(RData, &Name, u32), ZoneError>> =
                Vec::with_capacity(slice.len() * 2);
            let mut buffers: Vec<Vec<u8>> = Vec::with_capacity(slice.len() * 2);
            let mut buf_key: Vec<usize> = Vec::with_capacity(slice.len() * 2);
            for &(owner, rrtype, rrset) in slice {
                let chosen: &[usize] = if rrtype == RrType::DNSKEY && !kss_idx.is_empty() {
                    &kss_idx
                } else if !zss_idx.is_empty() {
                    &zss_idx
                } else {
                    &kss_idx
                };
                let first = match rrset.first() {
                    Some(f) => f,
                    None => {
                        slots.push(Err(ZoneError::EmptyRrset));
                        continue;
                    }
                };
                for &ki in chosen {
                    let (key, tag, _) = &signers[ki];
                    let fields = RData::Rrsig {
                        type_covered: rrtype,
                        algorithm: key.algorithm,
                        labels: significant_labels(owner) as u8,
                        original_ttl: first.ttl,
                        expiration: config.expiration,
                        inception: config.inception,
                        key_tag: *tag,
                        signer_name: apex.clone(),
                        signature: Vec::new(),
                    };
                    match signing_buffer(&fields, owner, rrset) {
                        Ok(buffer) => {
                            buffers.push(buffer);
                            buf_key.push(ki);
                            slots.push(Ok((fields, owner, first.ttl)));
                        }
                        Err(e) => slots.push(Err(e)),
                    }
                }
            }
            // Phase 2: sign each key's buffers in one interleaved batch.
            let mut sigs = vec![[0u8; 32]; buffers.len()];
            for (ki, (_, _, ctx)) in signers.iter().enumerate() {
                let idx: Vec<usize> = (0..buffers.len()).filter(|&i| buf_key[i] == ki).collect();
                if idx.is_empty() {
                    continue;
                }
                let refs: Vec<&[u8]> = idx.iter().map(|&i| buffers[i].as_slice()).collect();
                let mut out_sigs = vec![[0u8; 32]; idx.len()];
                ctx.sign_batch_into(&refs, &mut out_sigs);
                for (&i, s) in idx.iter().zip(&out_sigs) {
                    sigs[i] = *s;
                }
            }
            // Phase 3: patch the signatures into the templates, still in
            // work order.
            let mut next = 0usize;
            slots
                .into_iter()
                .map(|slot| {
                    slot.map(|(mut fields, owner, ttl)| {
                        if let RData::Rrsig { signature, .. } = &mut fields {
                            *signature = sigs[next].to_vec();
                        }
                        next += 1;
                        Record::new(owner.clone(), ttl, fields)
                    })
                })
                .collect()
        },
    );
    // The work list was produced by an in-order scan of `out`, and
    // `run_sharded` merges shards in index order, so the signature stream
    // is already in canonical owner order: merge it with one linear walk.
    let mut sigs: Vec<Record> = Vec::with_capacity(signed.len());
    for item in signed {
        sigs.push(item?);
    }
    out.merge_in_order(sigs)?;

    Ok(SignedZone {
        zone: out,
        denial: config.denial.clone(),
        keys: config.keys.clone(),
        nsec3_index,
    })
}

/// Will `owner` carry at least one RRSIG after signing? (Everything
/// authoritative does, except empty non-terminals and insecure delegation
/// points.)
#[cfg(test)]
mod tests {
    use super::*;
    use crate::nsec3hash::nsec3_hash;
    use dns_wire::name::name;
    use std::net::Ipv4Addr;

    const NOW: u32 = 1_710_000_000;

    fn build_zone() -> Zone {
        let mut z = Zone::new(name("example."));
        z.add(Record::new(
            name("example."),
            3600,
            RData::Soa {
                mname: name("ns1.example."),
                rname: name("host.example."),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            },
        ))
        .unwrap();
        z.add(Record::new(
            name("example."),
            3600,
            RData::Ns(name("ns1.example.")),
        ))
        .unwrap();
        z.add(Record::new(
            name("ns1.example."),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 53)),
        ))
        .unwrap();
        z.add(Record::new(
            name("www.example."),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ))
        .unwrap();
        z.add(Record::new(
            name("*.example."),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 99)),
        ))
        .unwrap();
        z
    }

    fn signed() -> SignedZone {
        sign_zone(
            &build_zone(),
            &SignerConfig::standard(&name("example."), NOW),
        )
        .unwrap()
    }

    #[test]
    fn signing_adds_dnssec_records() {
        let s = signed();
        assert!(s.zone.rrset(&name("example."), RrType::DNSKEY).is_some());
        assert!(s
            .zone
            .rrset(&name("example."), RrType::NSEC3PARAM)
            .is_some());
        assert!(s.zone.rrset(&name("example."), RrType::RRSIG).is_some());
        assert_eq!(s.nsec3_index.len(), 4); // apex, ns1, www, *
    }

    #[test]
    fn decoy_dnskeys_collide_with_zsk_and_publish_first() {
        let apex = name("example.");
        let decoys = decoy_dnskeys(&apex, 8);
        assert_eq!(decoys.len(), 8);
        let zsk_tag = SigningKey::zsk(&apex).key_tag();
        let ksk_tag = SigningKey::ksk(&apex).key_tag();
        for d in &decoys {
            assert_eq!(key_tag(&d.canonical_bytes()), zsk_tag);
            assert_ne!(key_tag(&d.canonical_bytes()), ksk_tag);
            match d {
                RData::Dnskey { public_key, .. } => {
                    assert_eq!(public_key.len(), simsig::PUBLIC_KEY_LEN)
                }
                _ => panic!("not a DNSKEY"),
            }
        }
        // Distinct keys (the validator tries each one individually).
        let mut uniq: Vec<Vec<u8>> = decoys.iter().map(|d| d.canonical_bytes()).collect();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 8);
        // Published ahead of the real keys, same owner/ttl, zone signs fine.
        let cfg = SignerConfig {
            extra_dnskeys: decoys.clone(),
            ..SignerConfig::standard(&apex, NOW)
        };
        let s = sign_zone(&build_zone(), &cfg).unwrap();
        let dnskeys = s.zone.rrset(&apex, RrType::DNSKEY).unwrap();
        assert_eq!(dnskeys.len(), 8 + 2);
        for (i, d) in decoys.iter().enumerate() {
            assert_eq!(&dnskeys[i].rdata, d, "decoy {i} not published in order");
        }
        // The DNSKEY RRSIG (by the KSK) covers the whole 10-key set.
        assert!(s.zone.rrset(&apex, RrType::RRSIG).unwrap().iter().any(
            |r| matches!(&r.rdata, RData::Rrsig { type_covered, key_tag: t, .. }
                    if *type_covered == RrType::DNSKEY && *t == ksk_tag)
        ));
    }

    #[test]
    fn nsec3_chain_is_circular_and_sorted() {
        let s = signed();
        let hashes: Vec<[u8; 20]> = s.nsec3_index.iter().map(|(h, _)| *h).collect();
        let mut sorted = hashes.clone();
        sorted.sort();
        assert_eq!(hashes, sorted);
        // Each NSEC3's next_hashed is the following hash, wrapping.
        for (i, (_, owner)) in s.nsec3_index.iter().enumerate() {
            let rec = &s.zone.rrset(owner, RrType::NSEC3).unwrap()[0];
            match &rec.rdata {
                RData::Nsec3 { next_hashed, .. } => {
                    assert_eq!(
                        next_hashed.as_slice(),
                        &hashes[(i + 1) % hashes.len()],
                        "chain at {owner}"
                    );
                }
                _ => panic!("not NSEC3"),
            }
        }
    }

    #[test]
    fn rrsig_verifies_and_rejects_tamper() {
        let s = signed();
        let www = name("www.example.");
        let rrset = s.zone.rrset(&www, RrType::A).unwrap().to_vec();
        let sigs = s.zone.rrset(&www, RrType::RRSIG).unwrap();
        let sig = sigs
            .iter()
            .find(|r| matches!(&r.rdata, RData::Rrsig { type_covered, .. } if *type_covered == RrType::A))
            .unwrap();
        let zsk = s.keys.iter().find(|k| !k.is_ksk()).unwrap();
        assert!(verify_rrsig(
            &sig.rdata,
            &www,
            &rrset,
            zsk.pair.public_key()
        ));
        // Tampered record must fail.
        let mut bad = rrset.clone();
        bad[0].rdata = RData::A(Ipv4Addr::new(10, 0, 0, 1));
        assert!(!verify_rrsig(&sig.rdata, &www, &bad, zsk.pair.public_key()));
        // Wrong key must fail.
        let ksk = s.keys.iter().find(|k| k.is_ksk()).unwrap();
        assert!(!verify_rrsig(
            &sig.rdata,
            &www,
            &rrset,
            ksk.pair.public_key()
        ));
    }

    #[test]
    fn dnskey_signed_by_ksk_everything_else_by_zsk() {
        let s = signed();
        let apex = name("example.");
        let ksk_tag = s.keys.iter().find(|k| k.is_ksk()).unwrap().key_tag();
        let zsk_tag = s.keys.iter().find(|k| !k.is_ksk()).unwrap().key_tag();
        let sigs = s.zone.rrset(&apex, RrType::RRSIG).unwrap();
        for sig in sigs {
            if let RData::Rrsig {
                type_covered,
                key_tag,
                ..
            } = &sig.rdata
            {
                if *type_covered == RrType::DNSKEY {
                    assert_eq!(*key_tag, ksk_tag);
                } else {
                    assert_eq!(*key_tag, zsk_tag);
                }
            }
        }
    }

    #[test]
    fn ds_records_cover_ksks_only() {
        let s = signed();
        let ds = s.ds_records(3600);
        assert_eq!(ds.len(), 1);
        match &ds[0].rdata {
            RData::Ds {
                key_tag: kt,
                digest_type,
                digest,
                ..
            } => {
                assert_eq!(*kt, s.keys.iter().find(|k| k.is_ksk()).unwrap().key_tag());
                assert_eq!(*digest_type, 2);
                assert_eq!(digest.len(), 32);
            }
            _ => panic!("not DS"),
        }
    }

    #[test]
    fn wildcard_expansion_verifies() {
        // Signature made over *.example. must verify for an expanded owner
        // via the labels-field reconstruction.
        let s = signed();
        let wild = name("*.example.");
        let rrset = s.zone.rrset(&wild, RrType::A).unwrap().to_vec();
        let sigs = s.zone.rrset(&wild, RrType::RRSIG).unwrap();
        let sig = sigs
            .iter()
            .find(|r| matches!(&r.rdata, RData::Rrsig { type_covered, .. } if *type_covered == RrType::A))
            .unwrap();
        let zsk = s.keys.iter().find(|k| !k.is_ksk()).unwrap();
        // Expanded: pretend the answer was synthesized for q.example.
        let expanded: Vec<Record> = rrset
            .iter()
            .map(|r| Record::new(name("q.example."), r.ttl, r.rdata.clone()))
            .collect();
        assert!(verify_rrsig(
            &sig.rdata,
            &name("q.example."),
            &expanded,
            zsk.pair.public_key()
        ));
        // And for a deeper expansion.
        let deeper: Vec<Record> = rrset
            .iter()
            .map(|r| Record::new(name("a.b.example."), r.ttl, r.rdata.clone()))
            .collect();
        assert!(verify_rrsig(
            &sig.rdata,
            &name("a.b.example."),
            &deeper,
            zsk.pair.public_key()
        ));
    }

    #[test]
    fn nsec_signing_builds_linear_chain() {
        let cfg = SignerConfig {
            denial: Denial::Nsec,
            ..SignerConfig::standard(&name("example."), NOW)
        };
        let s = sign_zone(&build_zone(), &cfg).unwrap();
        // Walk the chain from the apex; it must return to the apex after
        // covering every denial name.
        let start = name("example.");
        let mut cur = start.clone();
        let mut seen = 0;
        loop {
            let nsec = &s.zone.rrset(&cur, RrType::NSEC).unwrap()[0];
            let next = match &nsec.rdata {
                RData::Nsec { next, .. } => next.clone(),
                _ => panic!(),
            };
            seen += 1;
            cur = next;
            if cur == start {
                break;
            }
            assert!(seen < 100, "chain does not close");
        }
        assert_eq!(seen, 4);
    }

    #[test]
    fn apex_nsec3_bitmap_contains_zone_keys() {
        let s = signed();
        let apex_hash = nsec3_hash(&name("example."), s.nsec3_params().unwrap()).digest;
        let (_, owner) = s
            .nsec3_index
            .iter()
            .find(|(h, _)| *h == apex_hash)
            .expect("apex in index");
        let rec = &s.zone.rrset(owner, RrType::NSEC3).unwrap()[0];
        match &rec.rdata {
            RData::Nsec3 { types, .. } => {
                for t in [
                    RrType::SOA,
                    RrType::NS,
                    RrType::DNSKEY,
                    RrType::NSEC3PARAM,
                    RrType::RRSIG,
                ] {
                    assert!(types.contains(t), "apex bitmap missing {t}");
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn signing_requires_keys() {
        let cfg = SignerConfig {
            keys: vec![],
            ..SignerConfig::standard(&name("example."), NOW)
        };
        assert!(sign_zone(&build_zone(), &cfg).is_err());
    }
}
