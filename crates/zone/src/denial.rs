//! Authoritative-side denial-of-existence proof synthesis
//! (RFC 4035 §3.1.3, RFC 5155 §7.2).
//!
//! Given a signed zone and a query that has no positive answer, these
//! functions assemble the NSEC/NSEC3 records (plus their RRSIGs) that prove
//! the negative — the records a validating resolver will burn CPU on when
//! iteration counts are high.

use dns_wire::name::Name;
use dns_wire::rdata::RData;
use dns_wire::record::Record;
use dns_wire::rrtype::RrType;

use crate::nsec3hash::{nsec3_hash_cached, nsec3_hash_cached_batch};
use crate::signer::{Denial, SignedZone};
use crate::ZoneError;

/// What kind of negative answer the proof supports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DenialKind {
    /// The name does not exist at all.
    NxDomain,
    /// The name exists but not with the queried type.
    NoData,
    /// The answer was synthesized from a wildcard; the proof shows the
    /// exact name does not exist.
    WildcardExpansion,
}

/// A denial proof: the authority-section records to attach.
#[derive(Clone, Debug)]
pub struct DenialProof {
    /// Proof classification.
    pub kind: DenialKind,
    /// NSEC/NSEC3 records with their RRSIGs, ready for the authority
    /// section.
    pub records: Vec<Record>,
    /// The closest encloser used (NSEC3 NXDOMAIN proofs).
    pub closest_encloser: Option<Name>,
}

/// The record plus every RRSIG at `owner` covering `rrtype`.
fn with_rrsigs(z: &SignedZone, owner: &Name, rrtype: RrType) -> Vec<Record> {
    let mut out = Vec::new();
    if let Some(recs) = z.zone.rrset(owner, rrtype) {
        out.extend(recs.iter().cloned());
    }
    if let Some(sigs) = z.zone.rrset(owner, RrType::RRSIG) {
        out.extend(
            sigs.iter()
                .filter(|s| matches!(&s.rdata, RData::Rrsig { type_covered, .. } if *type_covered == rrtype))
                .cloned(),
        );
    }
    out
}

/// The NSEC3 owner whose hash equals the hash of `name`, if any.
pub fn nsec3_matching(z: &SignedZone, name: &Name) -> Option<Name> {
    let params = z.nsec3_params()?;
    // Denial proofs re-hash the same closest enclosers for every negative
    // answer an auth server synthesizes; the thread cache absorbs that.
    let h = nsec3_hash_cached(name, params).digest;
    nsec3_matching_hash(z, &h)
}

fn nsec3_matching_hash(z: &SignedZone, h: &[u8; 20]) -> Option<Name> {
    z.nsec3_index
        .binary_search_by(|(hash, _)| hash.cmp(h))
        .ok()
        .map(|i| z.nsec3_index[i].1.clone())
}

/// The NSEC3 owner whose (circular) hash interval strictly covers the hash
/// of `name`. Returns `None` if the hash collides with an existing owner
/// (then a *matching* record exists instead) or the index is empty.
pub fn nsec3_covering(z: &SignedZone, name: &Name) -> Option<Name> {
    let params = z.nsec3_params()?;
    let h = nsec3_hash_cached(name, params).digest;
    nsec3_covering_hash(z, &h)
}

fn nsec3_covering_hash(z: &SignedZone, h: &[u8; 20]) -> Option<Name> {
    if z.nsec3_index.is_empty() {
        return None;
    }
    match z.nsec3_index.binary_search_by(|(hash, _)| hash.cmp(h)) {
        Ok(_) => None, // exact match: not "covered", it's "matched"
        Err(insert_at) => {
            // Predecessor in circular order; index 0 wraps to the last.
            let idx = if insert_at == 0 {
                z.nsec3_index.len() - 1
            } else {
                insert_at - 1
            };
            Some(z.nsec3_index[idx].1.clone())
        }
    }
}

/// Assemble the NXDOMAIN proof for `qname`.
///
/// NSEC3 zones (RFC 5155 §7.2.2) need three records: one *matching* the
/// closest encloser, one *covering* the next-closer name, and one *covering*
/// the wildcard at the closest encloser. NSEC zones need the NSEC covering
/// `qname` and the one covering the wildcard.
pub fn nxdomain_proof(z: &SignedZone, qname: &Name) -> Result<DenialProof, ZoneError> {
    match &z.denial {
        Denial::Nsec3 { .. } => {
            let ce = z.zone.closest_encloser(qname);
            let next_closer = next_closer_name(qname, &ce)?;
            let wildcard = ce.prepend(b"*").map_err(|_| ZoneError::NameTooLong)?;
            // The proof always needs all three hashes (closest encloser,
            // next closer, wildcard at the encloser), so compute them in
            // one batched cache lookup: an adversarial NXDOMAIN storm pays
            // interleaved lanes per answer instead of three serial chains.
            let params = z.nsec3_params().expect("NSEC3 denial has params");
            let hashes = nsec3_hash_cached_batch(&[ce.clone(), next_closer, wildcard], params);
            let mut records = Vec::new();
            let mut push_owner = |owner: Option<Name>| {
                if let Some(o) = owner {
                    records.extend(with_rrsigs(z, &o, RrType::NSEC3));
                }
            };
            push_owner(nsec3_matching_hash(z, &hashes[0].digest));
            push_owner(nsec3_covering_hash(z, &hashes[1].digest));
            push_owner(nsec3_covering_hash(z, &hashes[2].digest));
            dedup_records(&mut records);
            Ok(DenialProof {
                kind: DenialKind::NxDomain,
                records,
                closest_encloser: Some(ce),
            })
        }
        Denial::Nsec => {
            let ce = z.zone.closest_encloser(qname);
            let wildcard = ce.prepend(b"*").map_err(|_| ZoneError::NameTooLong)?;
            let mut records = Vec::new();
            if let Some(owner) = nsec_covering(z, qname) {
                records.extend(with_rrsigs(z, &owner, RrType::NSEC));
            }
            if let Some(owner) = nsec_covering(z, &wildcard) {
                records.extend(with_rrsigs(z, &owner, RrType::NSEC));
            }
            dedup_records(&mut records);
            Ok(DenialProof {
                kind: DenialKind::NxDomain,
                records,
                closest_encloser: Some(ce),
            })
        }
    }
}

/// Assemble the NODATA proof: `qname` exists but lacks `qtype`.
pub fn nodata_proof(z: &SignedZone, qname: &Name) -> Result<DenialProof, ZoneError> {
    match &z.denial {
        Denial::Nsec3 { .. } => {
            let mut records = Vec::new();
            if let Some(owner) = nsec3_matching(z, qname) {
                records.extend(with_rrsigs(z, &owner, RrType::NSEC3));
            } else if let Some(owner) = nsec3_covering(z, qname) {
                // Opt-out zones may have no NSEC3 for an insecure
                // delegation; the covering record (with opt-out set) proves
                // the DS absence instead (RFC 5155 §7.2.4).
                records.extend(with_rrsigs(z, &owner, RrType::NSEC3));
            }
            Ok(DenialProof {
                kind: DenialKind::NoData,
                records,
                closest_encloser: None,
            })
        }
        Denial::Nsec => {
            let mut records = Vec::new();
            if let Some(recs) = z.zone.rrset(qname, RrType::NSEC) {
                let _ = recs;
                records.extend(with_rrsigs(z, qname, RrType::NSEC));
            } else if let Some(owner) = nsec_covering(z, qname) {
                records.extend(with_rrsigs(z, &owner, RrType::NSEC));
            }
            Ok(DenialProof {
                kind: DenialKind::NoData,
                records,
                closest_encloser: None,
            })
        }
    }
}

/// Proof accompanying a wildcard-expanded answer: the exact `qname` does not
/// exist (NSEC3 covering the next-closer name; NSEC covering `qname`).
pub fn wildcard_expansion_proof(
    z: &SignedZone,
    qname: &Name,
    closest_encloser: &Name,
) -> Result<DenialProof, ZoneError> {
    let mut records = Vec::new();
    match &z.denial {
        Denial::Nsec3 { .. } => {
            let next_closer = next_closer_name(qname, closest_encloser)?;
            if let Some(owner) = nsec3_covering(z, &next_closer) {
                records.extend(with_rrsigs(z, &owner, RrType::NSEC3));
            }
        }
        Denial::Nsec => {
            if let Some(owner) = nsec_covering(z, qname) {
                records.extend(with_rrsigs(z, &owner, RrType::NSEC));
            }
        }
    }
    Ok(DenialProof {
        kind: DenialKind::WildcardExpansion,
        records,
        closest_encloser: Some(closest_encloser.clone()),
    })
}

/// The *next closer* name: the ancestor of `qname` exactly one label longer
/// than the closest encloser (RFC 5155 §1.3).
pub fn next_closer_name(qname: &Name, closest_encloser: &Name) -> Result<Name, ZoneError> {
    if qname == closest_encloser {
        return Err(ZoneError::NotBelowEncloser);
    }
    let mut cur = qname.clone();
    loop {
        let parent = cur.parent().ok_or(ZoneError::NotBelowEncloser)?;
        if &parent == closest_encloser {
            return Ok(cur);
        }
        cur = parent;
    }
}

/// The NSEC owner whose (circular, canonical-order) interval covers `name`.
pub fn nsec_covering(z: &SignedZone, name: &Name) -> Option<Name> {
    // NSEC owners in canonical order.
    let owners: Vec<&Name> = z
        .zone
        .names()
        .filter(|n| z.zone.rrset(n, RrType::NSEC).is_some())
        .collect();
    if owners.is_empty() {
        return None;
    }
    // Predecessor of `name` (strictly before it). Wrap to last if `name`
    // precedes every owner.
    let idx = owners.partition_point(|o| o.canonical_cmp(name) == std::cmp::Ordering::Less);
    let owner = if idx == 0 {
        owners[owners.len() - 1]
    } else {
        owners[idx - 1]
    };
    if owner == name {
        return None; // name exists: matched, not covered
    }
    Some(owner.clone())
}

fn dedup_records(records: &mut Vec<Record>) {
    let mut seen: Vec<(Name, Vec<u8>)> = Vec::new();
    records.retain(|r| {
        let key = (r.name.clone(), r.rdata.canonical_bytes());
        if seen.contains(&key) {
            false
        } else {
            seen.push(key);
            true
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signer::{sign_zone, Denial, SignerConfig};
    use crate::zone::Zone;
    use dns_wire::name::name;
    use std::net::Ipv4Addr;

    const NOW: u32 = 1_710_000_000;

    fn build_signed(denial: Denial) -> SignedZone {
        let mut z = Zone::new(name("example."));
        z.add(Record::new(
            name("example."),
            3600,
            RData::Soa {
                mname: name("ns1.example."),
                rname: name("host.example."),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            },
        ))
        .unwrap();
        z.add(Record::new(
            name("example."),
            3600,
            RData::Ns(name("ns1.example.")),
        ))
        .unwrap();
        z.add(Record::new(
            name("ns1.example."),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 53)),
        ))
        .unwrap();
        z.add(Record::new(
            name("www.example."),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ))
        .unwrap();
        z.add(Record::new(
            name("a.b.example."),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 2)),
        ))
        .unwrap();
        let cfg = SignerConfig {
            denial,
            ..SignerConfig::standard(&name("example."), NOW)
        };
        sign_zone(&z, &cfg).unwrap()
    }

    #[test]
    fn next_closer_computation() {
        let ce = name("example.");
        assert_eq!(
            next_closer_name(&name("x.example."), &ce).unwrap(),
            name("x.example.")
        );
        assert_eq!(
            next_closer_name(&name("a.b.x.example."), &ce).unwrap(),
            name("x.example.")
        );
        assert!(next_closer_name(&ce, &ce).is_err());
    }

    #[test]
    fn nsec3_nxdomain_proof_has_three_distinct_nsec3s() {
        let z = build_signed(Denial::nsec3_rfc9276());
        let proof = nxdomain_proof(&z, &name("nx.example.")).unwrap();
        assert_eq!(proof.kind, DenialKind::NxDomain);
        assert_eq!(proof.closest_encloser, Some(name("example.")));
        let nsec3s: Vec<_> = proof
            .records
            .iter()
            .filter(|r| r.rrtype() == RrType::NSEC3)
            .collect();
        let rrsigs: Vec<_> = proof
            .records
            .iter()
            .filter(|r| r.rrtype() == RrType::RRSIG)
            .collect();
        assert!(
            (1..=3).contains(&nsec3s.len()),
            "expected 1..=3 NSEC3 records, got {}",
            nsec3s.len()
        );
        assert_eq!(
            nsec3s.len(),
            rrsigs.len(),
            "each NSEC3 travels with its RRSIG"
        );
    }

    #[test]
    fn nsec3_matching_and_covering_are_disjoint() {
        let z = build_signed(Denial::nsec3_rfc9276());
        let existing = name("www.example.");
        assert!(nsec3_matching(&z, &existing).is_some());
        assert!(nsec3_covering(&z, &existing).is_none());
        let missing = name("nx.example.");
        assert!(nsec3_matching(&z, &missing).is_none());
        assert!(nsec3_covering(&z, &missing).is_some());
    }

    #[test]
    fn nodata_proof_matches_qname() {
        let z = build_signed(Denial::nsec3_rfc9276());
        let proof = nodata_proof(&z, &name("www.example.")).unwrap();
        assert_eq!(proof.kind, DenialKind::NoData);
        let nsec3s: Vec<_> = proof
            .records
            .iter()
            .filter(|r| r.rrtype() == RrType::NSEC3)
            .collect();
        assert_eq!(nsec3s.len(), 1);
        // Its bitmap must show A but (say) not TXT.
        match &nsec3s[0].rdata {
            RData::Nsec3 { types, .. } => {
                assert!(types.contains(RrType::A));
                assert!(!types.contains(RrType::TXT));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn nxdomain_proof_for_deep_name_uses_ent_closest_encloser() {
        let z = build_signed(Denial::nsec3_rfc9276());
        // b.example. is an ENT (only a.b.example. exists under it).
        let proof = nxdomain_proof(&z, &name("zz.b.example.")).unwrap();
        assert_eq!(proof.closest_encloser, Some(name("b.example.")));
    }

    #[test]
    fn nsec_nxdomain_proof() {
        let z = build_signed(Denial::Nsec);
        let proof = nxdomain_proof(&z, &name("nx.example.")).unwrap();
        let nsecs: Vec<_> = proof
            .records
            .iter()
            .filter(|r| r.rrtype() == RrType::NSEC)
            .collect();
        assert!(!nsecs.is_empty() && nsecs.len() <= 2);
        // Each NSEC must actually cover nx.example. or *.example.
        for rec in &nsecs {
            match &rec.rdata {
                RData::Nsec { next, .. } => {
                    let covers = |target: &Name| {
                        let after_owner =
                            rec.name.canonical_cmp(target) == std::cmp::Ordering::Less;
                        let before_next = target.canonical_cmp(next) == std::cmp::Ordering::Less
                            || next == z.zone.apex(); // wrap
                        after_owner && before_next
                    };
                    assert!(covers(&name("nx.example.")) || covers(&name("*.example.")));
                }
                _ => panic!(),
            }
        }
    }

    #[test]
    fn nsec_covering_wraps_circularly() {
        let z = build_signed(Denial::Nsec);
        // A name canonically before the apex's first successor but "below"
        // everything — e.g. a name after the last owner wraps to last NSEC.
        let covering = nsec_covering(&z, &name("zzz.example.")).unwrap();
        assert!(z.zone.rrset(&covering, RrType::NSEC).is_some());
    }

    #[test]
    fn wildcard_expansion_proof_covers_next_closer() {
        let mut zone = Zone::new(name("example."));
        zone.add(Record::new(
            name("example."),
            3600,
            RData::Soa {
                mname: name("ns1.example."),
                rname: name("host.example."),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            },
        ))
        .unwrap();
        zone.add(Record::new(
            name("*.example."),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 9)),
        ))
        .unwrap();
        let z = sign_zone(&zone, &SignerConfig::standard(&name("example."), NOW)).unwrap();
        let proof =
            wildcard_expansion_proof(&z, &name("anything.example."), &name("example.")).unwrap();
        assert_eq!(proof.kind, DenialKind::WildcardExpansion);
        assert!(proof.records.iter().any(|r| r.rrtype() == RrType::NSEC3));
    }
}
