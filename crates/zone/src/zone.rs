//! The zone model: a canonically-ordered collection of RRsets with the
//! structural queries zone signing and denial-of-existence need.

use std::collections::{BTreeMap, BTreeSet};

use dns_wire::name::Name;
use dns_wire::rdata::RData;
use dns_wire::record::Record;
use dns_wire::rrtype::RrType;

use crate::ZoneError;

/// An (owner, type)-indexed zone. The owner index is a `BTreeMap` over
/// [`Name`]'s RFC 4034 canonical ordering, so iteration *is* canonical
/// order — exactly what NSEC chain building needs.
#[derive(Clone, Debug)]
pub struct Zone {
    apex: Name,
    rrsets: BTreeMap<Name, BTreeMap<RrType, Vec<Record>>>,
}

impl Zone {
    /// An empty zone rooted at `apex`.
    pub fn new(apex: Name) -> Self {
        Zone {
            apex,
            rrsets: BTreeMap::new(),
        }
    }

    /// The zone apex.
    pub fn apex(&self) -> &Name {
        &self.apex
    }

    /// Insert a record. Rejects out-of-bailiwick owners.
    pub fn add(&mut self, record: Record) -> Result<(), ZoneError> {
        if !record.name.is_subdomain_of(&self.apex) {
            return Err(ZoneError::OutOfZone(record.name.clone()));
        }
        self.rrsets
            .entry(record.name.clone())
            .or_default()
            .entry(record.rrtype())
            .or_default()
            .push(record);
        Ok(())
    }

    /// Remove every record of `rrtype` at `name`.
    pub fn remove_rrset(&mut self, name: &Name, rrtype: RrType) {
        if let Some(types) = self.rrsets.get_mut(name) {
            types.remove(&rrtype);
            if types.is_empty() {
                self.rrsets.remove(name);
            }
        }
    }

    /// The RRset of `rrtype` at `name`, if present.
    pub fn rrset(&self, name: &Name, rrtype: RrType) -> Option<&[Record]> {
        self.rrsets
            .get(name)
            .and_then(|t| t.get(&rrtype))
            .map(|v| v.as_slice())
    }

    /// Mutable access to an RRset (used by fault injectors).
    pub fn rrset_mut(&mut self, name: &Name, rrtype: RrType) -> Option<&mut Vec<Record>> {
        self.rrsets.get_mut(name).and_then(|t| t.get_mut(&rrtype))
    }

    /// Does any record exist at exactly `name`?
    pub fn has_name(&self, name: &Name) -> bool {
        self.rrsets.contains_key(name)
    }

    /// RR types present at `name`, ascending.
    pub fn types_at(&self, name: &Name) -> Vec<RrType> {
        self.rrsets
            .get(name)
            .map(|t| t.keys().copied().collect())
            .unwrap_or_default()
    }

    /// All records at `name` across types.
    pub fn records_at(&self, name: &Name) -> Vec<&Record> {
        self.rrsets
            .get(name)
            .map(|t| t.values().flatten().collect())
            .unwrap_or_default()
    }

    /// Owner names with explicit records, canonical order.
    pub fn names(&self) -> impl Iterator<Item = &Name> {
        self.rrsets.keys()
    }

    /// Every record in the zone, canonical owner order.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.rrsets.values().flat_map(|t| t.values().flatten())
    }

    /// Total record count.
    pub fn len(&self) -> usize {
        self.rrsets
            .values()
            .map(|t| t.values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// True if the zone holds no records.
    pub fn is_empty(&self) -> bool {
        self.rrsets.is_empty()
    }

    /// Is `name` a delegation point (NS RRset below the apex)?
    pub fn is_delegation(&self, name: &Name) -> bool {
        name != &self.apex && self.rrset(name, RrType::NS).is_some()
    }

    /// Is `name` a *secure* delegation (has a DS RRset)?
    pub fn is_signed_delegation(&self, name: &Name) -> bool {
        self.is_delegation(name) && self.rrset(name, RrType::DS).is_some()
    }

    /// Is `name` occluded — strictly below a delegation point (glue and
    /// anything else under a zone cut), and therefore not authoritative?
    pub fn is_occluded(&self, name: &Name) -> bool {
        let mut cur = name.parent();
        while let Some(n) = cur {
            if !n.is_subdomain_of(&self.apex) || n == self.apex {
                break;
            }
            if self.is_delegation(&n) {
                return true;
            }
            cur = n.parent();
        }
        false
    }

    /// Empty non-terminals: names with no records of their own that
    /// nevertheless exist because a descendant does (RFC 5155 needs NSEC3
    /// records for these).
    pub fn empty_non_terminals(&self) -> Vec<Name> {
        let mut ents = BTreeSet::new();
        for name in self.rrsets.keys() {
            let mut cur = name.parent();
            while let Some(n) = cur {
                if !n.is_subdomain_of(&self.apex) || n == self.apex {
                    break;
                }
                if !self.rrsets.contains_key(&n) {
                    ents.insert(n.clone());
                }
                cur = n.parent();
            }
        }
        ents.into_iter().collect()
    }

    /// Does `name` "exist" in the zone in the RFC 4035 sense — it has
    /// records, or it is an empty non-terminal?
    pub fn name_exists(&self, name: &Name) -> bool {
        if self.rrsets.contains_key(name) {
            return true;
        }
        // An ENT exists iff some stored name is strictly below `name`.
        self.rrsets
            .range(std::ops::RangeFrom {
                start: name.clone(),
            })
            .take_while(|(n, _)| n.is_subdomain_of(name))
            .any(|(n, _)| n != name)
    }

    /// The names that get denial-of-existence records (RFC 5155 §7.1):
    /// every authoritative name and delegation point plus empty
    /// non-terminals; occluded names excluded. With `opt_out`, *insecure*
    /// delegations (and ENTs that only exist because of them) are skipped.
    pub fn denial_names(&self, opt_out: bool) -> Vec<Name> {
        let mut out = BTreeSet::new();
        for name in self.rrsets.keys() {
            if self.is_occluded(name) {
                continue;
            }
            if opt_out && self.is_delegation(name) && !self.is_signed_delegation(name) {
                continue;
            }
            out.insert(name.clone());
        }
        for ent in self.empty_non_terminals() {
            if self.is_occluded(&ent) {
                continue;
            }
            if opt_out && !self.ent_has_in_chain_descendant(&ent, &out) {
                continue;
            }
            out.insert(ent);
        }
        out.into_iter().collect()
    }

    /// With opt-out, an ENT only needs an NSEC3 record if some in-chain name
    /// lives below it.
    fn ent_has_in_chain_descendant(&self, ent: &Name, in_chain: &BTreeSet<Name>) -> bool {
        in_chain.iter().any(|n| n != ent && n.is_subdomain_of(ent))
    }

    /// The closest encloser of `qname`: the longest existing (per
    /// [`Zone::name_exists`]) ancestor-or-self of `qname` inside the zone.
    pub fn closest_encloser(&self, qname: &Name) -> Name {
        for candidate in qname.self_and_ancestors() {
            if !candidate.is_subdomain_of(&self.apex) {
                break;
            }
            if self.name_exists(&candidate) {
                return candidate;
            }
        }
        self.apex.clone()
    }

    /// The SOA minimum TTL (used as the TTL of denial records, RFC 2308).
    pub fn negative_ttl(&self) -> u32 {
        match self.rrset(&self.apex, RrType::SOA) {
            Some([rec, ..]) => match &rec.rdata {
                RData::Soa { minimum, .. } => (*minimum).min(rec.ttl),
                _ => 3600,
            },
            _ => 3600,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::name::name;
    use std::net::Ipv4Addr;

    fn a(n: &str, last: u8) -> Record {
        Record::new(name(n), 300, RData::A(Ipv4Addr::new(192, 0, 2, last)))
    }

    fn soa(apex: &str) -> Record {
        Record::new(
            name(apex),
            3600,
            RData::Soa {
                mname: name("ns1.example."),
                rname: name("hostmaster.example."),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 900,
            },
        )
    }

    fn ns(owner: &str, target: &str) -> Record {
        Record::new(name(owner), 3600, RData::Ns(name(target)))
    }

    fn sample_zone() -> Zone {
        let mut z = Zone::new(name("example."));
        z.add(soa("example.")).unwrap();
        z.add(ns("example.", "ns1.example.")).unwrap();
        z.add(a("ns1.example.", 53)).unwrap();
        z.add(a("www.example.", 1)).unwrap();
        z.add(a("a.b.c.example.", 2)).unwrap(); // creates ENTs b.c and c
        z.add(ns("sub.example.", "ns1.sub.example.")).unwrap(); // insecure delegation
        z.add(a("ns1.sub.example.", 54)).unwrap(); // glue (occluded)
        z
    }

    #[test]
    fn add_rejects_out_of_zone() {
        let mut z = Zone::new(name("example."));
        assert!(z.add(a("www.other.", 1)).is_err());
    }

    #[test]
    fn rrset_lookup() {
        let z = sample_zone();
        assert_eq!(z.rrset(&name("www.example."), RrType::A).unwrap().len(), 1);
        assert!(z.rrset(&name("www.example."), RrType::TXT).is_none());
        assert!(z.rrset(&name("nx.example."), RrType::A).is_none());
    }

    #[test]
    fn delegation_and_occlusion() {
        let z = sample_zone();
        assert!(z.is_delegation(&name("sub.example.")));
        assert!(!z.is_delegation(&name("example.")));
        assert!(!z.is_signed_delegation(&name("sub.example.")));
        assert!(z.is_occluded(&name("ns1.sub.example.")));
        assert!(!z.is_occluded(&name("www.example.")));
    }

    #[test]
    fn empty_non_terminals_found() {
        let z = sample_zone();
        let ents = z.empty_non_terminals();
        assert_eq!(ents, vec![name("c.example."), name("b.c.example.")]);
    }

    #[test]
    fn name_exists_includes_ents() {
        let z = sample_zone();
        assert!(z.name_exists(&name("www.example.")));
        assert!(z.name_exists(&name("b.c.example.")));
        assert!(z.name_exists(&name("c.example.")));
        assert!(!z.name_exists(&name("nx.example.")));
        assert!(!z.name_exists(&name("z.b.c.example.")));
    }

    #[test]
    fn closest_encloser_walks_up() {
        let z = sample_zone();
        assert_eq!(z.closest_encloser(&name("nx.example.")), name("example."));
        assert_eq!(
            z.closest_encloser(&name("x.y.www.example.")),
            name("www.example.")
        );
        assert_eq!(
            z.closest_encloser(&name("q.b.c.example.")),
            name("b.c.example.")
        );
    }

    #[test]
    fn denial_names_full_chain() {
        let z = sample_zone();
        let names = z.denial_names(false);
        // apex, ns1, www, a.b.c, b.c (ENT), c (ENT), sub (delegation);
        // glue excluded.
        assert!(names.contains(&name("example.")));
        assert!(names.contains(&name("sub.example.")));
        assert!(names.contains(&name("b.c.example.")));
        assert!(!names.contains(&name("ns1.sub.example.")));
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn denial_names_opt_out_skips_insecure_delegations() {
        let z = sample_zone();
        let names = z.denial_names(true);
        assert!(!names.contains(&name("sub.example.")));
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn negative_ttl_is_min_of_soa_minimum_and_ttl() {
        let z = sample_zone();
        assert_eq!(z.negative_ttl(), 900);
        let z2 = Zone::new(name("x."));
        assert_eq!(z2.negative_ttl(), 3600);
    }

    #[test]
    fn len_and_iter() {
        let z = sample_zone();
        assert_eq!(z.len(), 7);
        assert_eq!(z.iter().count(), 7);
        assert!(!z.is_empty());
    }
}
