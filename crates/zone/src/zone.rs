//! The zone model: a canonically-ordered collection of RRsets with the
//! structural queries zone signing and denial-of-existence need.

use std::collections::{BTreeMap, BTreeSet};

use dns_wire::name::Name;
use dns_wire::rdata::RData;
use dns_wire::record::Record;
use dns_wire::rrtype::RrType;

use crate::ZoneError;

/// An (owner, type)-indexed zone. The owner index is a `BTreeMap` over
/// [`Name`]'s RFC 4034 canonical ordering, so iteration *is* canonical
/// order — exactly what NSEC chain building needs.
#[derive(Clone, Debug)]
pub struct Zone {
    apex: Name,
    rrsets: BTreeMap<Name, BTreeMap<RrType, Vec<Record>>>,
}

/// One member of the denial chain, with the per-name facts the signer
/// needs to build its NSEC3 record without further zone lookups.
pub(crate) struct DenialEntry {
    pub name: Name,
    /// RR types present at the name (empty for an empty non-terminal).
    pub types: Vec<RrType>,
    /// Will the name carry an RRSIG after signing?
    pub will_sign: bool,
}

impl Zone {
    /// An empty zone rooted at `apex`.
    pub fn new(apex: Name) -> Self {
        Zone {
            apex,
            rrsets: BTreeMap::new(),
        }
    }

    /// The zone apex.
    pub fn apex(&self) -> &Name {
        &self.apex
    }

    /// Insert a record. Rejects out-of-bailiwick owners.
    pub fn add(&mut self, record: Record) -> Result<(), ZoneError> {
        if !record.name.is_subdomain_of(&self.apex) {
            return Err(ZoneError::OutOfZone(record.name.clone()));
        }
        // Adding to an existing owner (the common case when signing: every
        // RRSIG lands on a name already present) must not clone the
        // per-label-allocated `Name` key.
        match self.rrsets.get_mut(&record.name) {
            Some(types) => types.entry(record.rrtype()).or_default().push(record),
            None => {
                let name = record.name.clone();
                let mut types = BTreeMap::new();
                types.insert(record.rrtype(), vec![record]);
                self.rrsets.insert(name, types);
            }
        }
        Ok(())
    }

    /// The owner-indexed RRset map itself, for same-crate code (the signer)
    /// that scans the zone in canonical order without per-name lookups.
    pub(crate) fn rrsets(&self) -> &BTreeMap<Name, BTreeMap<RrType, Vec<Record>>> {
        &self.rrsets
    }

    /// Merge records whose owners arrive in canonical (map) order with one
    /// linear walk over the zone instead of a tree lookup per record. The
    /// signer's RRSIG stream qualifies: it is produced from an in-order
    /// scan of this very map. Records whose owner is missing (or out of
    /// order) fall back to [`Zone::add`], so the fast path is only an
    /// optimization, never a behavior change.
    pub(crate) fn merge_in_order(&mut self, records: Vec<Record>) -> Result<(), ZoneError> {
        let mut it = records.into_iter().peekable();
        for (name, types) in self.rrsets.iter_mut() {
            if it.peek().is_none() {
                break;
            }
            while it.peek().is_some_and(|r| r.name == *name) {
                let r = it.next().expect("peeked");
                types.entry(r.rrtype()).or_default().push(r);
            }
        }
        for leftover in it {
            self.add(leftover)?;
        }
        Ok(())
    }

    /// Insert records whose owners are mostly *new* to the zone and arrive
    /// in canonical order — the signer's NSEC3 chain qualifies, because it
    /// is sorted by hash and base32hex preserves that order (RFC 5155
    /// chose the alphabet for exactly this property). Rebuilds the owner
    /// map with one linear merge of two sorted streams and a bulk build,
    /// instead of a logarithmic insert per record. Owners that do collide
    /// with an existing name are merged exactly like [`Zone::add`] would;
    /// records arriving out of order fall back to [`Zone::add`].
    pub(crate) fn merge_sorted_owners(&mut self, records: Vec<Record>) -> Result<(), ZoneError> {
        fn push(merged: &mut Vec<(Name, BTreeMap<RrType, Vec<Record>>)>, r: Record) {
            match merged.last_mut() {
                Some((name, types)) if *name == r.name => {
                    types.entry(r.rrtype()).or_default().push(r);
                }
                _ => {
                    let name = r.name.clone();
                    let mut types = BTreeMap::new();
                    types.insert(r.rrtype(), vec![r]);
                    merged.push((name, types));
                }
            }
        }
        // Split off anything that would invalidate the linear merge (out of
        // zone, or not in non-decreasing canonical order); `add` handles
        // those afterwards with its usual checks.
        let mut leftovers: Vec<Record> = Vec::new();
        let mut stream: Vec<Record> = Vec::with_capacity(records.len());
        for r in records {
            let fits = r.name.is_subdomain_of(&self.apex)
                && stream.last().is_none_or(|p| p.name <= r.name);
            if fits {
                stream.push(r);
            } else {
                leftovers.push(r);
            }
        }
        let old = std::mem::take(&mut self.rrsets);
        let mut merged: Vec<(Name, BTreeMap<RrType, Vec<Record>>)> =
            Vec::with_capacity(old.len() + stream.len());
        let mut it = stream.into_iter().peekable();
        for (name, types) in old {
            while it.peek().is_some_and(|r| r.name < name) {
                push(&mut merged, it.next().expect("peeked"));
            }
            match merged.last_mut() {
                // A new owner collided with an existing one: unify them.
                Some((last, last_types)) if *last == name => {
                    for (t, mut recs) in types {
                        let slot = last_types.entry(t).or_default();
                        // Existing records precede newly merged ones, as
                        // they would under repeated `add`.
                        recs.append(slot);
                        *slot = recs;
                    }
                }
                _ => merged.push((name, types)),
            }
        }
        for r in it {
            push(&mut merged, r);
        }
        self.rrsets = merged.into_iter().collect();
        for r in leftovers {
            self.add(r)?;
        }
        Ok(())
    }

    /// Remove every record of `rrtype` at `name`.
    pub fn remove_rrset(&mut self, name: &Name, rrtype: RrType) {
        if let Some(types) = self.rrsets.get_mut(name) {
            types.remove(&rrtype);
            if types.is_empty() {
                self.rrsets.remove(name);
            }
        }
    }

    /// The RRset of `rrtype` at `name`, if present.
    pub fn rrset(&self, name: &Name, rrtype: RrType) -> Option<&[Record]> {
        self.rrsets
            .get(name)
            .and_then(|t| t.get(&rrtype))
            .map(|v| v.as_slice())
    }

    /// Mutable access to an RRset (used by fault injectors).
    pub fn rrset_mut(&mut self, name: &Name, rrtype: RrType) -> Option<&mut Vec<Record>> {
        self.rrsets.get_mut(name).and_then(|t| t.get_mut(&rrtype))
    }

    /// Does any record exist at exactly `name`?
    pub fn has_name(&self, name: &Name) -> bool {
        self.rrsets.contains_key(name)
    }

    /// RR types present at `name`, ascending.
    pub fn types_at(&self, name: &Name) -> Vec<RrType> {
        self.rrsets
            .get(name)
            .map(|t| t.keys().copied().collect())
            .unwrap_or_default()
    }

    /// All records at `name` across types.
    pub fn records_at(&self, name: &Name) -> Vec<&Record> {
        self.rrsets
            .get(name)
            .map(|t| t.values().flatten().collect())
            .unwrap_or_default()
    }

    /// Owner names with explicit records, canonical order.
    pub fn names(&self) -> impl Iterator<Item = &Name> {
        self.rrsets.keys()
    }

    /// Every record in the zone, canonical owner order.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.rrsets.values().flat_map(|t| t.values().flatten())
    }

    /// Total record count.
    pub fn len(&self) -> usize {
        self.rrsets
            .values()
            .map(|t| t.values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// True if the zone holds no records.
    pub fn is_empty(&self) -> bool {
        self.rrsets.is_empty()
    }

    /// Is `name` a delegation point (NS RRset below the apex)?
    pub fn is_delegation(&self, name: &Name) -> bool {
        name != &self.apex && self.rrset(name, RrType::NS).is_some()
    }

    /// Is `name` a *secure* delegation (has a DS RRset)?
    pub fn is_signed_delegation(&self, name: &Name) -> bool {
        self.is_delegation(name) && self.rrset(name, RrType::DS).is_some()
    }

    /// Is `name` occluded — strictly below a delegation point (glue and
    /// anything else under a zone cut), and therefore not authoritative?
    pub fn is_occluded(&self, name: &Name) -> bool {
        let mut cur = name.parent();
        while let Some(n) = cur {
            if !n.is_subdomain_of(&self.apex) || n == self.apex {
                break;
            }
            if self.is_delegation(&n) {
                return true;
            }
            cur = n.parent();
        }
        false
    }

    /// Empty non-terminals: names with no records of their own that
    /// nevertheless exist because a descendant does (RFC 5155 needs NSEC3
    /// records for these).
    pub fn empty_non_terminals(&self) -> Vec<Name> {
        let mut ents = BTreeSet::new();
        let floor = self.apex.label_count() + 1;
        for name in self.rrsets.keys() {
            // A name directly under (or at/above) the apex has no room for
            // an ENT between itself and the apex — the common case in
            // flat zones, worth skipping the allocating parent() walk.
            if name.label_count() <= floor {
                continue;
            }
            let mut cur = name.parent();
            while let Some(n) = cur {
                if !n.is_subdomain_of(&self.apex) || n == self.apex {
                    break;
                }
                if !self.rrsets.contains_key(&n) {
                    ents.insert(n.clone());
                }
                cur = n.parent();
            }
        }
        ents.into_iter().collect()
    }

    /// Does `name` "exist" in the zone in the RFC 4035 sense — it has
    /// records, or it is an empty non-terminal?
    pub fn name_exists(&self, name: &Name) -> bool {
        if self.rrsets.contains_key(name) {
            return true;
        }
        // An ENT exists iff some stored name is strictly below `name`.
        self.rrsets
            .range(std::ops::RangeFrom {
                start: name.clone(),
            })
            .take_while(|(n, _)| n.is_subdomain_of(name))
            .any(|(n, _)| n != name)
    }

    /// The names that get denial-of-existence records (RFC 5155 §7.1):
    /// every authoritative name and delegation point plus empty
    /// non-terminals; occluded names excluded. With `opt_out`, *insecure*
    /// delegations (and ENTs that only exist because of them) are skipped.
    pub fn denial_names(&self, opt_out: bool) -> Vec<Name> {
        self.denial_entries(opt_out)
            .into_iter()
            .map(|e| e.name)
            .collect()
    }

    /// The denial chain with everything the signer needs per member —
    /// present RR types and whether the name will carry an RRSIG — computed
    /// in the same single canonical-order pass, so building NSEC3 records
    /// costs no per-name tree lookups afterwards.
    pub(crate) fn denial_entries(&self, opt_out: bool) -> Vec<DenialEntry> {
        // One pass in canonical order. A name is occluded iff it sits
        // strictly below a delegation point, and canonical order visits the
        // delegation before everything beneath it — so tracking the most
        // recent cut replaces the per-name ancestor walk (and its
        // per-label allocations) that `is_occluded` would cost. The tree
        // iterates in canonical order already, so the chain accumulates
        // into a Vec directly instead of re-sorting through a second
        // BTreeMap of cloned names.
        let mut main: Vec<DenialEntry> = Vec::with_capacity(self.rrsets.len());
        let mut cut: Option<&Name> = None;
        for (name, types) in &self.rrsets {
            if let Some(c) = cut {
                if name != c && name.is_subdomain_of(c) {
                    continue; // occluded
                }
                cut = None;
            }
            let is_delegation = name != &self.apex && types.contains_key(&RrType::NS);
            if is_delegation {
                cut = Some(name);
            }
            let signed_delegation = is_delegation && types.contains_key(&RrType::DS);
            if opt_out && is_delegation && !signed_delegation {
                continue;
            }
            // At a delegation only a DS RRset is signed; everywhere else
            // every authoritative name carries at least one RRSIG.
            let will_sign = !is_delegation || signed_delegation;
            main.push(DenialEntry {
                name: name.clone(),
                types: types.keys().copied().collect(),
                will_sign,
            });
        }
        // Empty non-terminals arrive sorted (BTreeSet) and are disjoint
        // from `main` (an ENT owns no records), so a single sorted merge
        // finishes the chain. An ENT kept under opt-out needs a signed
        // (i.e. surviving) name beneath it; descendants are contiguous
        // right after the ENT's insertion point in canonical order.
        let ents: Vec<Name> = self
            .empty_non_terminals()
            .into_iter()
            .filter(|ent| !self.is_occluded(ent))
            .filter(|ent| {
                if !opt_out {
                    return true;
                }
                let idx = main.partition_point(|e| e.name < *ent);
                idx < main.len() && main[idx].name.is_subdomain_of(ent)
            })
            .collect();
        if ents.is_empty() {
            return main;
        }
        let mut out = Vec::with_capacity(main.len() + ents.len());
        let mut main = main.into_iter().peekable();
        let mut ents = ents.into_iter().peekable();
        let ent_entry = |name: Name| DenialEntry {
            name,
            types: Vec::new(),
            will_sign: false,
        };
        loop {
            let take_main = match (main.peek(), ents.peek()) {
                (Some(m), Some(e)) => m.name < *e,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_main {
                out.push(main.next().expect("peeked"));
            } else {
                out.push(ent_entry(ents.next().expect("peeked")));
            }
        }
        out
    }

    /// The closest encloser of `qname`: the longest existing (per
    /// [`Zone::name_exists`]) ancestor-or-self of `qname` inside the zone.
    pub fn closest_encloser(&self, qname: &Name) -> Name {
        for candidate in qname.self_and_ancestors() {
            if !candidate.is_subdomain_of(&self.apex) {
                break;
            }
            if self.name_exists(&candidate) {
                return candidate;
            }
        }
        self.apex.clone()
    }

    /// The SOA minimum TTL (used as the TTL of denial records, RFC 2308).
    pub fn negative_ttl(&self) -> u32 {
        match self.rrset(&self.apex, RrType::SOA) {
            Some([rec, ..]) => match &rec.rdata {
                RData::Soa { minimum, .. } => (*minimum).min(rec.ttl),
                _ => 3600,
            },
            _ => 3600,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::name::name;
    use std::net::Ipv4Addr;

    fn a(n: &str, last: u8) -> Record {
        Record::new(name(n), 300, RData::A(Ipv4Addr::new(192, 0, 2, last)))
    }

    fn soa(apex: &str) -> Record {
        Record::new(
            name(apex),
            3600,
            RData::Soa {
                mname: name("ns1.example."),
                rname: name("hostmaster.example."),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 900,
            },
        )
    }

    fn ns(owner: &str, target: &str) -> Record {
        Record::new(name(owner), 3600, RData::Ns(name(target)))
    }

    fn sample_zone() -> Zone {
        let mut z = Zone::new(name("example."));
        z.add(soa("example.")).unwrap();
        z.add(ns("example.", "ns1.example.")).unwrap();
        z.add(a("ns1.example.", 53)).unwrap();
        z.add(a("www.example.", 1)).unwrap();
        z.add(a("a.b.c.example.", 2)).unwrap(); // creates ENTs b.c and c
        z.add(ns("sub.example.", "ns1.sub.example.")).unwrap(); // insecure delegation
        z.add(a("ns1.sub.example.", 54)).unwrap(); // glue (occluded)
        z
    }

    #[test]
    fn add_rejects_out_of_zone() {
        let mut z = Zone::new(name("example."));
        assert!(z.add(a("www.other.", 1)).is_err());
    }

    #[test]
    fn rrset_lookup() {
        let z = sample_zone();
        assert_eq!(z.rrset(&name("www.example."), RrType::A).unwrap().len(), 1);
        assert!(z.rrset(&name("www.example."), RrType::TXT).is_none());
        assert!(z.rrset(&name("nx.example."), RrType::A).is_none());
    }

    #[test]
    fn delegation_and_occlusion() {
        let z = sample_zone();
        assert!(z.is_delegation(&name("sub.example.")));
        assert!(!z.is_delegation(&name("example.")));
        assert!(!z.is_signed_delegation(&name("sub.example.")));
        assert!(z.is_occluded(&name("ns1.sub.example.")));
        assert!(!z.is_occluded(&name("www.example.")));
    }

    #[test]
    fn empty_non_terminals_found() {
        let z = sample_zone();
        let ents = z.empty_non_terminals();
        assert_eq!(ents, vec![name("c.example."), name("b.c.example.")]);
    }

    #[test]
    fn name_exists_includes_ents() {
        let z = sample_zone();
        assert!(z.name_exists(&name("www.example.")));
        assert!(z.name_exists(&name("b.c.example.")));
        assert!(z.name_exists(&name("c.example.")));
        assert!(!z.name_exists(&name("nx.example.")));
        assert!(!z.name_exists(&name("z.b.c.example.")));
    }

    #[test]
    fn closest_encloser_walks_up() {
        let z = sample_zone();
        assert_eq!(z.closest_encloser(&name("nx.example.")), name("example."));
        assert_eq!(
            z.closest_encloser(&name("x.y.www.example.")),
            name("www.example.")
        );
        assert_eq!(
            z.closest_encloser(&name("q.b.c.example.")),
            name("b.c.example.")
        );
    }

    #[test]
    fn denial_names_full_chain() {
        let z = sample_zone();
        let names = z.denial_names(false);
        // apex, ns1, www, a.b.c, b.c (ENT), c (ENT), sub (delegation);
        // glue excluded.
        assert!(names.contains(&name("example.")));
        assert!(names.contains(&name("sub.example.")));
        assert!(names.contains(&name("b.c.example.")));
        assert!(!names.contains(&name("ns1.sub.example.")));
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn denial_names_opt_out_skips_insecure_delegations() {
        let z = sample_zone();
        let names = z.denial_names(true);
        assert!(!names.contains(&name("sub.example.")));
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn negative_ttl_is_min_of_soa_minimum_and_ttl() {
        let z = sample_zone();
        assert_eq!(z.negative_ttl(), 900);
        let z2 = Zone::new(name("x."));
        assert_eq!(z2.negative_ttl(), 3600);
    }

    #[test]
    fn len_and_iter() {
        let z = sample_zone();
        assert_eq!(z.len(), 7);
        assert_eq!(z.iter().count(), 7);
        assert!(!z.is_empty());
    }
}
