//! Misconfiguration injection: the deliberately-broken zone states the
//! paper's methodology depends on (expired signatures for the `expired` and
//! `it-2501-expired` testbed zones, RFC 5155 consistency violations for the
//! domain census filters).

use dns_wire::name::Name;
use dns_wire::rdata::RData;
use dns_wire::record::Record;
use dns_wire::rrtype::RrType;

use crate::signer::SignedZone;

/// Corrupt (flip one byte of) every RRSIG covering `covered` anywhere in the
/// zone. Validation of those RRsets then fails as *bogus*.
pub fn corrupt_rrsigs_covering(z: &mut SignedZone, covered: RrType) -> usize {
    let names: Vec<Name> = z.zone.names().cloned().collect();
    let mut corrupted = 0;
    for name in names {
        if let Some(sigs) = z.zone.rrset_mut(&name, RrType::RRSIG) {
            for sig in sigs.iter_mut() {
                if let RData::Rrsig {
                    type_covered,
                    signature,
                    ..
                } = &mut sig.rdata
                {
                    if *type_covered == covered && !signature.is_empty() {
                        signature[0] ^= 0xff;
                        corrupted += 1;
                    }
                }
            }
        }
    }
    corrupted
}

/// Set the temporal validity of every RRSIG covering `covered` (or all
/// RRSIGs when `covered` is `None`) to an already-expired window.
///
/// This is how the testbed's `expired` and `it-2501-expired` zones are
/// built: the signatures are cryptographically correct but stale.
pub fn expire_rrsigs(z: &mut SignedZone, covered: Option<RrType>, now: u32) -> usize {
    let names: Vec<Name> = z.zone.names().cloned().collect();
    let mut expired = 0;
    for name in names {
        if let Some(sigs) = z.zone.rrset_mut(&name, RrType::RRSIG) {
            for sig in sigs.iter_mut() {
                if let RData::Rrsig {
                    type_covered,
                    expiration,
                    inception,
                    ..
                } = &mut sig.rdata
                {
                    if covered.map(|c| c == *type_covered).unwrap_or(true) {
                        *inception = now.saturating_sub(60 * 86_400);
                        *expiration = now.saturating_sub(30 * 86_400);
                        expired += 1;
                    }
                }
            }
        }
    }
    // NOTE: the signatures are now invalid (the timestamps are signed
    // fields), which is exactly what a really-expired zone looks like to a
    // validator that checks time first — and a validator that checks the
    // signature first sees bogus. Either way it is not secure.
    expired
}

/// Re-sign nothing, but overwrite the NSEC3PARAM iteration count so it
/// disagrees with the NSEC3 records — an RFC 5155 consistency violation the
/// census methodology (§4.1) filters out.
pub fn desync_nsec3param(z: &mut SignedZone, bogus_iterations: u16) -> bool {
    let apex = z.zone.apex().clone();
    if let Some(params) = z.zone.rrset_mut(&apex, RrType::NSEC3PARAM) {
        for rec in params.iter_mut() {
            if let RData::Nsec3Param { iterations, .. } = &mut rec.rdata {
                *iterations = bogus_iterations;
            }
        }
        return true;
    }
    false
}

/// Add a second NSEC3PARAM record at the apex (the census keeps only
/// domains with exactly one).
pub fn add_second_nsec3param(z: &mut SignedZone, iterations: u16, salt: Vec<u8>) {
    let apex = z.zone.apex().clone();
    let ttl = z.zone.negative_ttl();
    z.zone
        .add(Record::new(
            apex,
            ttl,
            RData::Nsec3Param {
                hash_alg: 1,
                flags: 0,
                iterations,
                salt,
            },
        ))
        .expect("apex is in zone");
}

/// Make one NSEC3 record disagree with the others' parameters (iterations
/// +1) — violates the RFC 5155 requirement that all NSEC3 records in a zone
/// share parameters.
pub fn desync_one_nsec3(z: &mut SignedZone) -> bool {
    let owners: Vec<Name> = z
        .zone
        .names()
        .filter(|n| z.zone.rrset(n, RrType::NSEC3).is_some())
        .cloned()
        .collect();
    if let Some(owner) = owners.first() {
        if let Some(recs) = z.zone.rrset_mut(owner, RrType::NSEC3) {
            for rec in recs.iter_mut() {
                if let RData::Nsec3 { iterations, .. } = &mut rec.rdata {
                    *iterations = iterations.wrapping_add(1);
                    return true;
                }
            }
        }
    }
    false
}

/// Remove every RRSIG covering `covered` — an unsigned-RRset hole.
pub fn strip_rrsigs_covering(z: &mut SignedZone, covered: RrType) -> usize {
    let names: Vec<Name> = z.zone.names().cloned().collect();
    let mut stripped = 0;
    for name in names {
        if let Some(sigs) = z.zone.rrset_mut(&name, RrType::RRSIG) {
            let before = sigs.len();
            sigs.retain(|sig| {
                !matches!(&sig.rdata, RData::Rrsig { type_covered, .. } if *type_covered == covered)
            });
            stripped += before - sigs.len();
        }
    }
    stripped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signer::{sign_zone, verify_rrsig, SignerConfig};
    use crate::zone::Zone;
    use dns_wire::name::name;
    use std::net::Ipv4Addr;

    const NOW: u32 = 1_710_000_000;

    fn signed() -> SignedZone {
        let mut z = Zone::new(name("example."));
        z.add(Record::new(
            name("example."),
            3600,
            RData::Soa {
                mname: name("ns1.example."),
                rname: name("host.example."),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            },
        ))
        .unwrap();
        z.add(Record::new(
            name("www.example."),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ))
        .unwrap();
        sign_zone(&z, &SignerConfig::standard(&name("example."), NOW)).unwrap()
    }

    #[test]
    fn corrupt_breaks_verification() {
        let mut z = signed();
        let n = corrupt_rrsigs_covering(&mut z, RrType::NSEC3);
        assert!(n > 0);
        // Find one NSEC3 RRset and its (corrupted) sig; verification fails.
        let owner = z
            .zone
            .names()
            .find(|nm| z.zone.rrset(nm, RrType::NSEC3).is_some())
            .cloned()
            .unwrap();
        let rrset = z.zone.rrset(&owner, RrType::NSEC3).unwrap().to_vec();
        let sig = z
            .zone
            .rrset(&owner, RrType::RRSIG)
            .unwrap()
            .iter()
            .find(|s| matches!(&s.rdata, RData::Rrsig { type_covered, .. } if *type_covered == RrType::NSEC3))
            .cloned()
            .unwrap();
        let zsk = z.keys.iter().find(|k| !k.is_ksk()).unwrap();
        assert!(!verify_rrsig(
            &sig.rdata,
            &owner,
            &rrset,
            zsk.pair.public_key()
        ));
    }

    #[test]
    fn expire_moves_validity_window() {
        let mut z = signed();
        let n = expire_rrsigs(&mut z, None, NOW);
        assert!(n > 0);
        for rec in z.zone.iter() {
            if let RData::Rrsig { expiration, .. } = &rec.rdata {
                assert!(*expiration < NOW);
            }
        }
    }

    #[test]
    fn expire_only_selected_type() {
        let mut z = signed();
        expire_rrsigs(&mut z, Some(RrType::NSEC3), NOW);
        for rec in z.zone.iter() {
            if let RData::Rrsig {
                type_covered,
                expiration,
                ..
            } = &rec.rdata
            {
                if *type_covered == RrType::NSEC3 {
                    assert!(*expiration < NOW);
                } else {
                    assert!(*expiration > NOW);
                }
            }
        }
    }

    #[test]
    fn desync_param_changes_apex_only() {
        let mut z = signed();
        assert!(desync_nsec3param(&mut z, 999));
        let apex = z.zone.apex().clone();
        match &z.zone.rrset(&apex, RrType::NSEC3PARAM).unwrap()[0].rdata {
            RData::Nsec3Param { iterations, .. } => assert_eq!(*iterations, 999),
            _ => panic!(),
        }
        // NSEC3 records untouched.
        for rec in z.zone.iter() {
            if let RData::Nsec3 { iterations, .. } = &rec.rdata {
                assert_eq!(*iterations, 0);
            }
        }
    }

    #[test]
    fn second_param_added() {
        let mut z = signed();
        add_second_nsec3param(&mut z, 5, vec![1, 2]);
        let apex = z.zone.apex().clone();
        assert_eq!(z.zone.rrset(&apex, RrType::NSEC3PARAM).unwrap().len(), 2);
    }

    #[test]
    fn desync_one_nsec3_record() {
        let mut z = signed();
        assert!(desync_one_nsec3(&mut z));
        let mut seen = std::collections::HashSet::new();
        for rec in z.zone.iter() {
            if let RData::Nsec3 { iterations, .. } = &rec.rdata {
                seen.insert(*iterations);
            }
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn strip_removes_only_selected() {
        let mut z = signed();
        let n = strip_rrsigs_covering(&mut z, RrType::SOA);
        assert_eq!(n, 1);
        for rec in z.zone.iter() {
            if let RData::Rrsig { type_covered, .. } = &rec.rdata {
                assert_ne!(*type_covered, RrType::SOA);
            }
        }
    }
}
