//! Master-file (zone file) parsing and printing (RFC 1035 §5) — the
//! format CZDS downloads and AXFR dumps arrive in.
//!
//! Supported: `$ORIGIN` / `$TTL` directives, `@`, relative names,
//! comments, parenthesized multi-line records (the conventional SOA
//! layout), and the presentation formats of every record type this
//! workspace handles — including RRSIG's `YYYYMMDDHHmmSS` timestamps and
//! NSEC3's `-` empty salt.

use dns_wire::base32;
use dns_wire::base64;
use dns_wire::name::Name;
use dns_wire::rdata::RData;
use dns_wire::record::Record;
use dns_wire::rrtype::{Class, RrType};
use dns_wire::typebitmap::TypeBitmap;

use crate::zone::Zone;
use crate::ZoneError;

/// A zone-file parse error with its line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "zone file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a zone file into a [`Zone`]. `default_origin` seeds `$ORIGIN`
/// when the file does not declare one.
pub fn parse_zone(text: &str, default_origin: &Name) -> Result<Zone, ParseError> {
    let mut origin = default_origin.clone();
    let mut default_ttl: u32 = 3600;
    let mut last_owner: Option<Name> = None;
    let mut records: Vec<Record> = Vec::new();

    for (line_no, logical) in logical_lines(text) {
        let err = |message: String| ParseError {
            line: line_no,
            message,
        };
        let mut tokens = tokenize(&logical);
        if tokens.is_empty() {
            continue;
        }
        // Directives.
        if tokens[0].eq_ignore_ascii_case("$ORIGIN") {
            let arg = tokens
                .get(1)
                .ok_or_else(|| err("$ORIGIN needs a name".into()))?;
            origin = parse_name(arg, &origin).map_err(&err)?;
            continue;
        }
        if tokens[0].eq_ignore_ascii_case("$TTL") {
            let arg = tokens
                .get(1)
                .ok_or_else(|| err("$TTL needs a value".into()))?;
            default_ttl = arg.parse().map_err(|_| err(format!("bad TTL {arg}")))?;
            continue;
        }
        // Owner: present unless the line starts with whitespace.
        let owner = if logical.starts_with(' ') || logical.starts_with('\t') {
            last_owner
                .clone()
                .ok_or_else(|| err("no previous owner".into()))?
        } else {
            let tok = tokens.remove(0);
            parse_name(&tok, &origin).map_err(&err)?
        };
        last_owner = Some(owner.clone());
        // Optional TTL and class, in either order.
        let mut ttl = default_ttl;
        let i = 0;
        while i < tokens.len() {
            if let Ok(v) = tokens[i].parse::<u32>() {
                if RrType::from_mnemonic(&tokens[i]).is_none() {
                    ttl = v;
                    tokens.remove(i);
                    continue;
                }
            }
            if tokens[i].eq_ignore_ascii_case("IN") || tokens[i].eq_ignore_ascii_case("CH") {
                tokens.remove(i);
                continue;
            }
            break;
        }
        if tokens.is_empty() {
            return Err(err("missing record type".into()));
        }
        let rtype = RrType::from_mnemonic(&tokens.remove(0))
            .ok_or_else(|| err("unknown record type".into()))?;
        let rdata = parse_rdata(rtype, &tokens, &origin).map_err(err)?;
        records.push(Record {
            name: owner,
            class: Class::IN,
            ttl,
            rdata,
        });
    }

    // The zone apex: the owner of the SOA, else the origin.
    let apex = records
        .iter()
        .find(|r| r.rrtype() == RrType::SOA)
        .map(|r| r.name.clone())
        .unwrap_or(origin);
    let mut zone = Zone::new(apex);
    for rec in records {
        let line = 0;
        zone.add(rec).map_err(|e: ZoneError| ParseError {
            line,
            message: e.to_string(),
        })?;
    }
    Ok(zone)
}

/// Print a zone in master-file format (stable, canonical owner order).
pub fn print_zone(zone: &Zone) -> String {
    let mut out = String::new();
    out.push_str(&format!("$ORIGIN {}\n", zone.apex()));
    out.push_str("$TTL 3600\n");
    for rec in zone.iter() {
        out.push_str(&rec.to_string());
        out.push('\n');
    }
    out
}

/// Merge parenthesized multi-line records and strip comments; yields
/// `(starting line number, logical line)`.
fn logical_lines(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut pending: Option<(usize, String, i32)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        let opens = line.matches('(').count() as i32;
        let closes = line.matches(')').count() as i32;
        match pending.take() {
            None => {
                if opens > closes {
                    pending = Some((idx + 1, line.replace(['(', ')'], " "), opens - closes));
                } else if !line.trim().is_empty() {
                    out.push((idx + 1, line.replace(['(', ')'], " ")));
                }
            }
            Some((start, mut acc, depth)) => {
                acc.push(' ');
                acc.push_str(&line.replace(['(', ')'], " "));
                let depth = depth + opens - closes;
                if depth <= 0 {
                    out.push((start, acc));
                } else {
                    pending = Some((start, acc, depth));
                }
            }
        }
    }
    if let Some((start, acc, _)) = pending {
        out.push((start, acc));
    }
    out
}

/// Strip a `;` comment, respecting quoted strings.
fn strip_comment(line: &str) -> String {
    let mut out = String::new();
    let mut in_quotes = false;
    let mut escaped = false;
    for c in line.chars() {
        match c {
            '\\' if !escaped => {
                escaped = true;
                out.push(c);
                continue;
            }
            '"' if !escaped => in_quotes = !in_quotes,
            ';' if !in_quotes && !escaped => break,
            _ => {}
        }
        escaped = false;
        out.push(c);
    }
    out
}

/// Split into tokens, keeping quoted strings together (quotes removed).
fn tokenize(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut escaped = false;
    let mut was_quoted = false;
    for c in line.chars() {
        if escaped {
            cur.push(c);
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => {
                in_quotes = !in_quotes;
                was_quoted = true;
            }
            c if c.is_ascii_whitespace() && !in_quotes => {
                if !cur.is_empty() || was_quoted {
                    out.push(std::mem::take(&mut cur));
                    was_quoted = false;
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() || was_quoted {
        out.push(cur);
    }
    out
}

/// Parse a possibly-relative name against the origin; `@` is the origin.
fn parse_name(token: &str, origin: &Name) -> Result<Name, String> {
    if token == "@" {
        return Ok(origin.clone());
    }
    if token.ends_with('.') && !token.ends_with("\\.") {
        return Name::parse(token).map_err(|e| e.to_string());
    }
    let rel = Name::parse(token).map_err(|e| e.to_string())?;
    rel.concat(origin).map_err(|e| e.to_string())
}

/// RRSIG timestamp: either raw seconds or `YYYYMMDDHHmmSS`.
fn parse_timestamp(token: &str) -> Result<u32, String> {
    if token.len() == 14 && token.bytes().all(|b| b.is_ascii_digit()) {
        let get = |range: std::ops::Range<usize>| -> u64 { token[range].parse().unwrap() };
        let (y, m, d) = (get(0..4) as i64, get(4..6) as i64, get(6..8) as i64);
        let (hh, mm, ss) = (get(8..10), get(10..12), get(12..14));
        // days_from_civil (Howard Hinnant's algorithm).
        let y_adj = if m <= 2 { y - 1 } else { y };
        let era = if y_adj >= 0 { y_adj } else { y_adj - 399 } / 400;
        let yoe = y_adj - era * 400;
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        let days = era * 146_097 + doe - 719_468;
        let secs = days as u64 * 86_400 + hh * 3_600 + mm * 60 + ss;
        return u32::try_from(secs).map_err(|_| "timestamp out of range".into());
    }
    token.parse().map_err(|_| format!("bad timestamp {token}"))
}

fn parse_hex(token: &str) -> Result<Vec<u8>, String> {
    if token == "-" {
        return Ok(Vec::new());
    }
    dns_crypto::hex_parse(token).ok_or_else(|| format!("bad hex {token}"))
}

fn parse_bitmap(tokens: &[String]) -> Result<TypeBitmap, String> {
    let mut bm = TypeBitmap::new();
    for t in tokens {
        bm.insert(RrType::from_mnemonic(t).ok_or_else(|| format!("unknown type {t}"))?);
    }
    Ok(bm)
}

fn need<'a>(tokens: &'a [String], i: usize, what: &str) -> Result<&'a str, String> {
    tokens
        .get(i)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing {what}"))
}

fn parse_rdata(rtype: RrType, tokens: &[String], origin: &Name) -> Result<RData, String> {
    let rd = match rtype {
        RrType::A => RData::A(
            need(tokens, 0, "address")?
                .parse()
                .map_err(|_| "bad IPv4 address".to_string())?,
        ),
        RrType::AAAA => RData::Aaaa(
            need(tokens, 0, "address")?
                .parse()
                .map_err(|_| "bad IPv6 address".to_string())?,
        ),
        RrType::NS => RData::Ns(parse_name(need(tokens, 0, "target")?, origin)?),
        RrType::CNAME => RData::Cname(parse_name(need(tokens, 0, "target")?, origin)?),
        RrType::PTR => RData::Ptr(parse_name(need(tokens, 0, "target")?, origin)?),
        RrType::MX => RData::Mx {
            preference: need(tokens, 0, "preference")?
                .parse()
                .map_err(|_| "bad preference")?,
            exchange: parse_name(need(tokens, 1, "exchange")?, origin)?,
        },
        RrType::TXT => RData::Txt(tokens.iter().map(|t| t.as_bytes().to_vec()).collect()),
        RrType::SOA => RData::Soa {
            mname: parse_name(need(tokens, 0, "mname")?, origin)?,
            rname: parse_name(need(tokens, 1, "rname")?, origin)?,
            serial: need(tokens, 2, "serial")?
                .parse()
                .map_err(|_| "bad serial")?,
            refresh: need(tokens, 3, "refresh")?
                .parse()
                .map_err(|_| "bad refresh")?,
            retry: need(tokens, 4, "retry")?.parse().map_err(|_| "bad retry")?,
            expire: need(tokens, 5, "expire")?
                .parse()
                .map_err(|_| "bad expire")?,
            minimum: need(tokens, 6, "minimum")?
                .parse()
                .map_err(|_| "bad minimum")?,
        },
        RrType::DNSKEY => RData::Dnskey {
            flags: need(tokens, 0, "flags")?.parse().map_err(|_| "bad flags")?,
            protocol: need(tokens, 1, "protocol")?
                .parse()
                .map_err(|_| "bad protocol")?,
            algorithm: need(tokens, 2, "algorithm")?
                .parse()
                .map_err(|_| "bad algorithm")?,
            public_key: base64::decode(&tokens[3..].join("")).ok_or("bad base64 public key")?,
        },
        RrType::DS => RData::Ds {
            key_tag: need(tokens, 0, "key tag")?
                .parse()
                .map_err(|_| "bad key tag")?,
            algorithm: need(tokens, 1, "algorithm")?
                .parse()
                .map_err(|_| "bad algorithm")?,
            digest_type: need(tokens, 2, "digest type")?
                .parse()
                .map_err(|_| "bad digest type")?,
            digest: parse_hex(&tokens[3..].join(""))?,
        },
        RrType::RRSIG => RData::Rrsig {
            type_covered: RrType::from_mnemonic(need(tokens, 0, "type covered")?)
                .ok_or("bad type covered")?,
            algorithm: need(tokens, 1, "algorithm")?
                .parse()
                .map_err(|_| "bad algorithm")?,
            labels: need(tokens, 2, "labels")?
                .parse()
                .map_err(|_| "bad labels")?,
            original_ttl: need(tokens, 3, "original ttl")?
                .parse()
                .map_err(|_| "bad ttl")?,
            expiration: parse_timestamp(need(tokens, 4, "expiration")?)?,
            inception: parse_timestamp(need(tokens, 5, "inception")?)?,
            key_tag: need(tokens, 6, "key tag")?
                .parse()
                .map_err(|_| "bad key tag")?,
            signer_name: parse_name(need(tokens, 7, "signer")?, origin)?,
            signature: base64::decode(&tokens[8..].join("")).ok_or("bad base64 signature")?,
        },
        RrType::NSEC => RData::Nsec {
            next: parse_name(need(tokens, 0, "next name")?, origin)?,
            types: parse_bitmap(&tokens[1..])?,
        },
        RrType::NSEC3 => {
            let next = need(tokens, 4, "next hashed owner")?;
            RData::Nsec3 {
                hash_alg: need(tokens, 0, "hash alg")?
                    .parse()
                    .map_err(|_| "bad hash alg")?,
                flags: need(tokens, 1, "flags")?.parse().map_err(|_| "bad flags")?,
                iterations: need(tokens, 2, "iterations")?
                    .parse()
                    .map_err(|_| "bad iterations")?,
                salt: parse_hex(need(tokens, 3, "salt")?)?,
                next_hashed: base32::decode(next).ok_or("bad base32 next hashed owner")?,
                types: parse_bitmap(&tokens[5..])?,
            }
        }
        RrType::NSEC3PARAM => RData::Nsec3Param {
            hash_alg: need(tokens, 0, "hash alg")?
                .parse()
                .map_err(|_| "bad hash alg")?,
            flags: need(tokens, 1, "flags")?.parse().map_err(|_| "bad flags")?,
            iterations: need(tokens, 2, "iterations")?
                .parse()
                .map_err(|_| "bad iterations")?,
            salt: parse_hex(need(tokens, 3, "salt")?)?,
        },
        other => {
            // RFC 3597 generic encoding: `TYPE123 \# <len> <hex...>`.
            if need(tokens, 0, "rdata")? == "\\#" {
                let len: usize = need(tokens, 1, "rdata length")?
                    .parse()
                    .map_err(|_| "bad \\# length")?;
                let data = parse_hex(&tokens[2..].join(""))?;
                if data.len() != len {
                    return Err(format!(
                        "\\# length {len} does not match {} data bytes",
                        data.len()
                    ));
                }
                RData::Unknown {
                    rtype: other.0,
                    data,
                }
            } else {
                return Err(format!("unsupported type {other} in zone file"));
            }
        }
    };
    Ok(rd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signer::{sign_zone, SignerConfig};
    use dns_wire::name::name;

    const SAMPLE: &str = r#"
$ORIGIN example.com.
$TTL 300
@   3600 IN SOA ns1 hostmaster (
        2024030501 ; serial
        7200       ; refresh
        3600       ; retry
        1209600    ; expire
        300 )      ; minimum
@        IN NS  ns1
ns1      IN A   192.0.2.53
www 600  IN A   192.0.2.1
         IN AAAA 2001:db8::1
alias    IN CNAME www
@        IN MX  10 mail
mail     IN A   192.0.2.25
txt      IN TXT "hello world" "second; string"
"#;

    #[test]
    fn parses_the_sample() {
        let zone = parse_zone(SAMPLE, &name(".")).unwrap();
        assert_eq!(zone.apex(), &name("example.com."));
        assert_eq!(
            zone.rrset(&name("www.example.com."), RrType::A).unwrap()[0].ttl,
            600
        );
        // Owner carried over from the previous line.
        assert!(zone
            .rrset(&name("www.example.com."), RrType::AAAA)
            .is_some());
        // Relative names resolved against $ORIGIN.
        match &zone
            .rrset(&name("alias.example.com."), RrType::CNAME)
            .unwrap()[0]
            .rdata
        {
            RData::Cname(t) => assert_eq!(t, &name("www.example.com.")),
            _ => panic!(),
        }
        // SOA across parentheses and comments.
        match &zone.rrset(&name("example.com."), RrType::SOA).unwrap()[0].rdata {
            RData::Soa {
                serial, minimum, ..
            } => {
                assert_eq!(*serial, 2024030501);
                assert_eq!(*minimum, 300);
            }
            _ => panic!(),
        }
        // Quoted TXT strings survive, including the semicolon.
        match &zone.rrset(&name("txt.example.com."), RrType::TXT).unwrap()[0].rdata {
            RData::Txt(strings) => {
                assert_eq!(strings[0], b"hello world");
                assert_eq!(strings[1], b"second; string");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn print_parse_roundtrip_of_a_signed_zone() {
        let zone = parse_zone(SAMPLE, &name(".")).unwrap();
        let signed = sign_zone(&zone, &SignerConfig::standard(zone.apex(), 1_710_000_000)).unwrap();
        let text = print_zone(&signed.zone);
        let reparsed = parse_zone(&text, &name(".")).unwrap();
        assert_eq!(reparsed.len(), signed.zone.len());
        // Every record survives byte-identically (canonical compare).
        let a: Vec<String> = signed.zone.iter().map(|r| r.to_string()).collect();
        let b: Vec<String> = reparsed.iter().map(|r| r.to_string()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn rrsig_datetime_timestamps() {
        assert_eq!(parse_timestamp("19700101000000").unwrap(), 0);
        assert_eq!(parse_timestamp("20240315000000").unwrap(), 1_710_460_800);
        assert_eq!(parse_timestamp("1710460800").unwrap(), 1_710_460_800);
        assert!(parse_timestamp("garbage").is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "$ORIGIN example.com.\nwww IN A not-an-address\n";
        let err = parse_zone(bad, &name(".")).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("IPv4"));
    }

    #[test]
    fn rejects_unknown_type_and_missing_fields() {
        assert!(parse_zone("www IN PTR\n", &name("example.com.")).is_err());
        let err = parse_zone("www IN WKS 1 2 3\n", &name("example.com.")).unwrap_err();
        assert!(
            err.message.contains("unknown record type"),
            "{}",
            err.message
        );
    }

    #[test]
    fn rfc3597_generic_rdata() {
        let text = "$ORIGIN example.\nx IN TYPE9999 \\# 3 01 02 ff\n";
        let zone = parse_zone(text, &name(".")).unwrap();
        let rec = zone.iter().next().unwrap();
        assert_eq!(
            rec.rdata,
            RData::Unknown {
                rtype: 9999,
                data: vec![1, 2, 0xff]
            }
        );
        // And its Display form parses back.
        let printed = format!("$ORIGIN example.\n{rec}\n");
        let reparsed = parse_zone(&printed, &name(".")).unwrap();
        assert_eq!(reparsed.iter().next().unwrap().rdata, rec.rdata);
        // Length mismatch rejected.
        assert!(parse_zone("x IN TYPE9 \\# 2 01\n", &name("example.")).is_err());
    }

    #[test]
    fn at_sign_and_default_origin() {
        let zone = parse_zone("@ IN A 192.0.2.7\n", &name("fallback.example.")).unwrap();
        assert!(zone.rrset(&name("fallback.example."), RrType::A).is_some());
    }

    #[test]
    fn nsec3_presentation_roundtrip() {
        let text = "$ORIGIN example.\nabc123 IN NSEC3 1 1 12 aabbccdd 2T7B4G4VSA5SMI47K61MV5BV1A22BOJR A RRSIG\n";
        let zone = parse_zone(text, &name(".")).unwrap();
        let rec = zone.iter().next().unwrap();
        match &rec.rdata {
            RData::Nsec3 {
                iterations,
                salt,
                next_hashed,
                types,
                flags,
                ..
            } => {
                assert_eq!(*iterations, 12);
                assert_eq!(salt, &vec![0xaa, 0xbb, 0xcc, 0xdd]);
                assert_eq!(next_hashed.len(), 20);
                assert_eq!(*flags, 1);
                assert!(types.contains(RrType::A));
            }
            _ => panic!(),
        }
        // And back out through Display.
        let printed = rec.to_string();
        assert!(
            printed.contains("2T7B4G4VSA5SMI47K61MV5BV1A22BOJR"),
            "{printed}"
        );
    }
}
