//! Property-based tests for the statistics toolkit.

use sim_check::{gens, props};

use analysis::domains::{operator_table, DomainRecord, DomainStats};
use analysis::stats::{pct, Cdf};

props! {
    /// CDF fractions are monotone non-decreasing and bounded in [0, 1].
    fn cdf_monotone_bounded(samples in gens::vec_of(gens::u32s(..), 0..200)) {
        let cdf = Cdf::from_samples(samples.clone());
        let mut last = 0.0f64;
        for x in [0u32, 1, 10, 100, 1000, u32::MAX / 2, u32::MAX] {
            let f = cdf.fraction_at_most(x);
            assert!((0.0..=1.0).contains(&f));
            assert!(f >= last);
            last = f;
        }
        if !samples.is_empty() {
            assert_eq!(cdf.fraction_at_most(u32::MAX), 1.0);
        }
    }

    /// count_over + count_at_most == len.
    fn cdf_counts_partition(samples in gens::vec_of(gens::u32s(..), 0..200), x in gens::u32s(..)) {
        let cdf = Cdf::from_samples(samples.clone());
        let at_most = (cdf.fraction_at_most(x) * samples.len() as f64).round() as usize;
        assert_eq!(at_most + cdf.count_over(x), samples.len());
    }

    /// points() ends at 100 % and is strictly increasing in x.
    fn cdf_points_well_formed(samples in gens::vec_of(gens::u32s(..), 1..100)) {
        let cdf = Cdf::from_samples(samples);
        let pts = cdf.points();
        assert!(!pts.is_empty());
        assert!((pts.last().unwrap().1 - 100.0).abs() < 1e-9);
        for w in pts.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 < w[1].1 + 1e-12);
        }
    }

    /// Quantiles are actual samples and ordered.
    fn cdf_quantiles_ordered(samples in gens::vec_of(gens::u32s(..), 1..100)) {
        let cdf = Cdf::from_samples(samples.clone());
        let q25 = cdf.quantile(0.25).unwrap();
        let q75 = cdf.quantile(0.75).unwrap();
        assert!(q25 <= q75);
        assert!(samples.contains(&q25));
        assert!(samples.contains(&q75));
    }

    /// pct stays in range.
    fn pct_bounded(part in gens::u32s(..), whole in gens::u32s(..)) {
        let p = pct(part.min(whole) as u64, whole as u64);
        assert!((0.0..=100.0).contains(&p));
    }

    /// Operator table shares sum to at most 100 % and counts are sane.
    fn operator_table_invariants(
        assignments in gens::vec_of((gens::u8s(0..6), gens::u16s(0..10), gens::u8s(0..10)), 1..100),
    ) {
        let records: Vec<DomainRecord> = assignments
            .iter()
            .enumerate()
            .map(|(i, (op, it, salt))| DomainRecord {
                name: format!("d{i}.com."),
                dnssec: true,
                nsec3: Some((*it, *salt)),
                opt_out: false,
                operator: Some(format!("op{op}.example.")),
                probe_loss: false,
            })
            .collect();
        let table = operator_table(&records, 10);
        let total_share: f64 = table.iter().map(|r| r.share_pct).sum();
        assert!(total_share <= 100.0 + 1e-9);
        let total_count: u64 = table.iter().map(|r| r.count).sum();
        assert_eq!(total_count, records.len() as u64);
        // Rows sorted by count descending.
        for w in table.windows(2) {
            assert!(w[0].count >= w[1].count);
        }
        // Per-row parameter shares sum to 100.
        for row in &table {
            let s: f64 = row.params.iter().map(|(_, _, p)| *p).sum();
            assert!((s - 100.0).abs() < 1e-6);
        }
        // Stats agree with raw counting.
        let stats = DomainStats::compute(&records);
        assert_eq!(stats.nsec3, records.len() as u64);
    }
}
