//! Standalone SVG renderers for the paper's figures — no dependencies,
//! just hand-assembled markup. The harnesses write these next to the CSV
//! series so the reproduced figures can be compared with the originals
//! visually.

use crate::resolvers::RcodeShares;
use crate::stats::Cdf;

const W: f64 = 640.0;
const H: f64 = 400.0;
const MARGIN_L: f64 = 60.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 50.0;

fn plot_w() -> f64 {
    W - MARGIN_L - MARGIN_R
}

fn plot_h() -> f64 {
    H - MARGIN_T - MARGIN_B
}

fn header(title: &str) -> String {
    format!(
        concat!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#,
            "\n",
            r#"<rect width="{w}" height="{h}" fill="white"/>"#,
            "\n",
            r#"<text x="{tx}" y="24" font-family="sans-serif" font-size="15" text-anchor="middle">{title}</text>"#,
            "\n"
        ),
        w = W,
        h = H,
        tx = W / 2.0,
        title = xml_escape(title),
    )
}

fn axes(x_label: &str, y_label: &str) -> String {
    let mut s = String::new();
    // Axis lines.
    s.push_str(&format!(
        r#"<line x1="{l}" y1="{t}" x2="{l}" y2="{b}" stroke="black"/>"#,
        l = MARGIN_L,
        t = MARGIN_T,
        b = H - MARGIN_B
    ));
    s.push_str(&format!(
        r#"<line x1="{l}" y1="{b}" x2="{r}" y2="{b}" stroke="black"/>"#,
        l = MARGIN_L,
        b = H - MARGIN_B,
        r = W - MARGIN_R
    ));
    // Y ticks at 0/25/50/75/100 %.
    for pct in [0, 25, 50, 75, 100] {
        let y = H - MARGIN_B - plot_h() * pct as f64 / 100.0;
        s.push_str(&format!(
            concat!(
                r#"<line x1="{l0}" y1="{y}" x2="{l}" y2="{y}" stroke="black"/>"#,
                r#"<text x="{lt}" y="{yt}" font-family="sans-serif" font-size="11" text-anchor="end">{pct}</text>"#
            ),
            l0 = MARGIN_L - 4.0,
            l = MARGIN_L,
            y = y,
            lt = MARGIN_L - 8.0,
            yt = y + 4.0,
            pct = pct
        ));
    }
    s.push_str(&format!(
        r#"<text x="16" y="{cy}" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 {cy})">{label}</text>"#,
        cy = MARGIN_T + plot_h() / 2.0,
        label = xml_escape(y_label)
    ));
    s.push_str(&format!(
        r#"<text x="{cx}" y="{by}" font-family="sans-serif" font-size="12" text-anchor="middle">{label}</text>"#,
        cx = MARGIN_L + plot_w() / 2.0,
        by = H - 12.0,
        label = xml_escape(x_label)
    ));
    s
}

fn x_ticks(x_max: f64, count: usize) -> String {
    let mut s = String::new();
    for i in 0..=count {
        let frac = i as f64 / count as f64;
        let x = MARGIN_L + plot_w() * frac;
        let v = x_max * frac;
        s.push_str(&format!(
            concat!(
                r#"<line x1="{x}" y1="{b}" x2="{x}" y2="{b4}" stroke="black"/>"#,
                r#"<text x="{x}" y="{bt}" font-family="sans-serif" font-size="11" text-anchor="middle">{v}</text>"#
            ),
            x = x,
            b = H - MARGIN_B,
            b4 = H - MARGIN_B + 4.0,
            bt = H - MARGIN_B + 18.0,
            v = v.round() as u64
        ));
    }
    s
}

fn polyline(points: &[(f64, f64)], color: &str, dash: &str) -> String {
    let coords: Vec<String> = points
        .iter()
        .map(|(x, y)| format!("{x:.1},{y:.1}"))
        .collect();
    format!(
        r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2" stroke-dasharray="{dash}"/>"#,
        coords.join(" ")
    )
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Render a CDF (step curve) as an SVG document, clipped to `x_max`.
pub fn cdf_svg(title: &str, x_label: &str, cdf: &Cdf, x_max: u32) -> String {
    let mut svg = header(title);
    svg.push_str(&axes(x_label, "No. of domains (%)"));
    svg.push_str(&x_ticks(x_max as f64, 5));
    if !cdf.is_empty() {
        let to_xy = |x: u32, pct: f64| {
            let px = MARGIN_L + plot_w() * (x.min(x_max) as f64 / x_max as f64);
            let py = H - MARGIN_B - plot_h() * pct / 100.0;
            (px, py)
        };
        let mut pts: Vec<(f64, f64)> = Vec::new();
        let mut last_pct = 0.0;
        for (x, pct) in cdf.points() {
            if x > x_max {
                break;
            }
            // Step: horizontal to the new x at the old height, then up.
            let (px, _) = to_xy(x, pct);
            let (_, py_old) = to_xy(x, last_pct);
            let (_, py_new) = to_xy(x, pct);
            pts.push((px, py_old));
            pts.push((px, py_new));
            last_pct = pct;
        }
        // Extend to the right edge.
        pts.push((
            MARGIN_L + plot_w(),
            H - MARGIN_B - plot_h() * last_pct / 100.0,
        ));
        svg.push_str(&polyline(&pts, "#1b6ca8", ""));
    }
    svg.push_str("</svg>\n");
    svg
}

/// Render one Figure 3 panel (three share curves vs iteration count).
pub fn figure3_svg(title: &str, series: &[RcodeShares]) -> String {
    let x_max = series.iter().map(|p| p.n).max().unwrap_or(500) as f64;
    let mut svg = header(title);
    svg.push_str(&axes("No. of add. it.", "No. of resolvers (%)"));
    svg.push_str(&x_ticks(x_max, 5));
    let to_xy = |n: u16, pct: f64| {
        let px = MARGIN_L + plot_w() * (n as f64 / x_max);
        let py = H - MARGIN_B - plot_h() * pct / 100.0;
        (px, py)
    };
    type Getter = Box<dyn Fn(&RcodeShares) -> f64>;
    let curves: [(&str, &str, Getter); 3] = [
        ("#1b6ca8", "", Box::new(|p: &RcodeShares| p.nxdomain)),
        ("#e8a33d", "6,3", Box::new(|p: &RcodeShares| p.ad_nxdomain)),
        ("#b5443c", "2,3", Box::new(|p: &RcodeShares| p.servfail)),
    ];
    for (color, dash, get) in &curves {
        let pts: Vec<(f64, f64)> = series.iter().map(|p| to_xy(p.n, get(p))).collect();
        svg.push_str(&polyline(&pts, color, dash));
    }
    // Legend.
    let labels = ["NXDOMAIN", "AD+NXDOMAIN", "SERVFAIL"];
    for (i, ((color, dash, _), label)) in curves.iter().zip(labels).enumerate() {
        let y = MARGIN_T + 14.0 + i as f64 * 16.0;
        svg.push_str(&format!(
            concat!(
                r#"<line x1="{x0}" y1="{y}" x2="{x1}" y2="{y}" stroke="{color}" stroke-width="2" stroke-dasharray="{dash}"/>"#,
                r#"<text x="{xt}" y="{yt}" font-family="sans-serif" font-size="11">{label}</text>"#
            ),
            x0 = MARGIN_L + 10.0,
            x1 = MARGIN_L + 40.0,
            y = y,
            color = color,
            dash = dash,
            xt = MARGIN_L + 46.0,
            yt = y + 4.0,
            label = label
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_svg_well_formed() {
        let cdf = Cdf::from_samples([0, 0, 1, 8, 25, 100]);
        let svg = cdf_svg("Figure 1", "No. of add. it.", &cdf, 50);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("Figure 1"));
        assert_eq!(svg.matches("<svg").count(), 1);
    }

    #[test]
    fn empty_cdf_svg_has_axes_only() {
        let svg = cdf_svg("t", "x", &Cdf::from_samples([]), 50);
        assert!(!svg.contains("polyline"));
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn figure3_svg_has_three_curves_and_legend() {
        let series = vec![
            RcodeShares {
                n: 1,
                nxdomain: 100.0,
                ad_nxdomain: 98.0,
                servfail: 0.0,
            },
            RcodeShares {
                n: 151,
                nxdomain: 80.0,
                ad_nxdomain: 15.0,
                servfail: 20.0,
            },
            RcodeShares {
                n: 500,
                nxdomain: 80.0,
                ad_nxdomain: 14.0,
                servfail: 20.0,
            },
        ];
        let svg = figure3_svg("(a) Open, IPv4", &series);
        assert_eq!(svg.matches("polyline").count(), 3);
        assert!(svg.contains("SERVFAIL"));
        assert!(svg.contains("AD+NXDOMAIN"));
    }

    #[test]
    fn titles_are_escaped() {
        let svg = cdf_svg("a < b & c", "x", &Cdf::from_samples([1]), 10);
        assert!(svg.contains("a &lt; b &amp; c"));
    }
}
