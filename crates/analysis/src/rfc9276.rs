//! Table 1 of the paper: the twelve RFC 9276 guidance items, with
//! programmatic compliance checks where the measurement can decide them.

use dns_zone::nsec3hash::Nsec3Params;

/// RFC 2119 requirement levels used by RFC 9276.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Keyword {
    Should,
    ShouldNot,
    Must,
    MustNot,
    May,
    NotRecommended,
}

impl Keyword {
    /// Presentation string.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Should => "SHOULD",
            Keyword::ShouldNot => "SHOULD NOT",
            Keyword::Must => "MUST",
            Keyword::MustNot => "MUST NOT",
            Keyword::May => "MAY",
            Keyword::NotRecommended => "NOT RECOMMENDED",
        }
    }
}

/// One guidance item (1–5 for authoritative side, 6–12 for validators).
#[derive(Clone, Copy, Debug)]
pub struct Item {
    /// Item number as in Table 1.
    pub number: u8,
    /// Requirement level.
    pub keyword: Keyword,
    /// Abbreviated guidance text.
    pub guidance: &'static str,
}

/// All twelve items of Table 1.
pub const ITEMS: [Item; 12] = [
    Item {
        number: 1,
        keyword: Keyword::Should,
        guidance: "prefer NSEC over NSEC3 if NSEC3's features are not needed",
    },
    Item {
        number: 2,
        keyword: Keyword::Must,
        guidance: "set the number of additional iterations to 0",
    },
    Item {
        number: 3,
        keyword: Keyword::ShouldNot,
        guidance: "use a salt",
    },
    Item {
        number: 4,
        keyword: Keyword::NotRecommended,
        guidance: "set the opt-out flag for small zones",
    },
    Item {
        number: 5,
        keyword: Keyword::May,
        guidance: "set opt-out for very large, sparsely signed zones",
    },
    Item {
        number: 6,
        keyword: Keyword::May,
        guidance: "return an insecure response for non-compliant NSEC3",
    },
    Item {
        number: 7,
        keyword: Keyword::Should,
        guidance: "verify NSEC3 RRSIGs before honoring iteration counts",
    },
    Item {
        number: 8,
        keyword: Keyword::May,
        guidance: "SERVFAIL for non-compliant NSEC3",
    },
    Item {
        number: 9,
        keyword: Keyword::May,
        guidance: "ignore non-compliant responses (likely SERVFAIL)",
    },
    Item {
        number: 10,
        keyword: Keyword::Should,
        guidance: "return EDE INFO-CODE 27 when items 6/8 trigger",
    },
    Item {
        number: 11,
        keyword: Keyword::MustNot,
        guidance: "omit the EDE when item 9 is implemented",
    },
    Item {
        number: 12,
        keyword: Keyword::Should,
        guidance: "use the same threshold for items 6 and 8",
    },
];

/// Domain-side compliance verdict for one zone's parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DomainCompliance {
    /// Item 2: iterations == 0.
    pub item2_zero_iterations: bool,
    /// Item 3: no salt.
    pub item3_no_salt: bool,
    /// Item 4 heuristic: opt-out unset (we treat every registered domain
    /// as a "small zone", as the paper argues in §5.1).
    pub item4_no_opt_out: bool,
}

impl DomainCompliance {
    /// Evaluate parameters + opt-out flag.
    pub fn evaluate(params: &Nsec3Params, opt_out: bool) -> Self {
        DomainCompliance {
            item2_zero_iterations: params.iterations == 0,
            item3_no_salt: params.salt.is_empty(),
            item4_no_opt_out: !opt_out,
        }
    }

    /// The paper's headline predicate: compliant with the MUST of item 2.
    /// ("87.8 % of NSEC3-enabled domains fail to adhere to RFC 9276" is
    /// the complement of this.)
    pub fn rfc9276_compliant(&self) -> bool {
        self.item2_zero_iterations
    }

    /// Full parameter compliance (items 2 *and* 3 — the 12.7 % of Tranco
    /// domains in Figure 2's discussion).
    pub fn fully_compliant(&self) -> bool {
        self.item2_zero_iterations && self.item3_no_salt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_items_with_table1_keywords() {
        assert_eq!(ITEMS.len(), 12);
        assert_eq!(ITEMS[1].number, 2);
        assert_eq!(ITEMS[1].keyword, Keyword::Must);
        assert_eq!(ITEMS[2].keyword, Keyword::ShouldNot);
        assert_eq!(ITEMS[10].keyword, Keyword::MustNot);
        assert_eq!(Keyword::NotRecommended.as_str(), "NOT RECOMMENDED");
    }

    #[test]
    fn compliance_evaluation() {
        let good = DomainCompliance::evaluate(&Nsec3Params::rfc9276(), false);
        assert!(good.rfc9276_compliant());
        assert!(good.fully_compliant());
        assert!(good.item4_no_opt_out);

        let iter_only = DomainCompliance::evaluate(&Nsec3Params::new(1, vec![]), false);
        assert!(!iter_only.rfc9276_compliant());

        let salt_only = DomainCompliance::evaluate(&Nsec3Params::new(0, vec![1]), true);
        assert!(salt_only.rfc9276_compliant(), "item 2 is the MUST");
        assert!(!salt_only.fully_compliant());
        assert!(!salt_only.item4_no_opt_out);
    }
}
