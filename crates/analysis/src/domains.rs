//! §5.1 aggregation: domain-population statistics, Figure 1 CDFs, and the
//! Table 2 operator breakdown.

use std::collections::{BTreeMap, HashMap};

use crate::stats::{pct, Cdf};

/// One analyzed domain (from the census pipeline or from declared specs).
#[derive(Clone, Debug)]
pub struct DomainRecord {
    /// Domain name (presentation form).
    pub name: String,
    /// DNSSEC-enabled (DNSKEY present).
    pub dnssec: bool,
    /// NSEC3 parameters if NSEC3-enabled: `(iterations, salt_len)`.
    pub nsec3: Option<(u16, u8)>,
    /// Opt-out flag observed.
    pub opt_out: bool,
    /// Exclusive operator (registered domain of all NS targets), if any.
    pub operator: Option<String>,
    /// Probe traffic for this domain was lost to network faults: the
    /// record carries no measurement and must not be classified.
    pub probe_loss: bool,
}

/// Aggregate statistics over a domain population (the §5.1 numbers).
#[derive(Clone, Debug)]
pub struct DomainStats {
    /// Total domains analyzed.
    pub total: u64,
    /// Domains whose probes were lost to network faults. Lost records
    /// carry no measurement: they are excluded from every other tally
    /// and from percentage denominators (clean runs have `lost = 0`).
    pub lost: u64,
    /// DNSSEC-enabled count.
    pub dnssec: u64,
    /// NSEC3-enabled count.
    pub nsec3: u64,
    /// NSEC3-enabled domains with zero additional iterations.
    pub zero_iterations: u64,
    /// NSEC3-enabled domains without salt.
    pub no_salt: u64,
    /// NSEC3-enabled domains with opt-out set.
    pub opt_out: u64,
    /// CDF of additional iterations (NSEC3-enabled only).
    pub iterations_cdf: Cdf,
    /// CDF of salt lengths in bytes (NSEC3-enabled only).
    pub salt_cdf: Cdf,
}

/// Incremental [`DomainStats`] accumulator — the streaming census's
/// sink. Records are folded in one at a time ([`DomainTally::add`]),
/// shard tallies combine with [`DomainTally::merge`], and the footprint
/// stays O(distinct parameter values) no matter how many domains flow
/// through: the CDFs accumulate as count maps, never as per-domain
/// sample vectors. [`DomainStats::compute`] folds through this same
/// type, so the batch and streaming paths cannot drift.
#[derive(Clone, Debug, Default)]
pub struct DomainTally {
    total: u64,
    lost: u64,
    dnssec: u64,
    nsec3: u64,
    zero_iterations: u64,
    no_salt: u64,
    opt_out: u64,
    iterations: BTreeMap<u32, u64>,
    salt: BTreeMap<u32, u64>,
}

impl DomainTally {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one record in.
    pub fn add(&mut self, rec: &DomainRecord) {
        self.total += 1;
        if rec.probe_loss {
            // Lost records carry no measurement: counted, not tallied.
            self.lost += 1;
            return;
        }
        if rec.dnssec {
            self.dnssec += 1;
        }
        if let Some((iterations, salt_len)) = rec.nsec3 {
            self.nsec3 += 1;
            if iterations == 0 {
                self.zero_iterations += 1;
            }
            if salt_len == 0 {
                self.no_salt += 1;
            }
            if rec.opt_out {
                self.opt_out += 1;
            }
            *self.iterations.entry(iterations as u32).or_default() += 1;
            *self.salt.entry(salt_len as u32).or_default() += 1;
        }
    }

    /// Combine another tally in (shard merge). Order-insensitive: every
    /// field is a sum or a count map.
    pub fn merge(&mut self, other: DomainTally) {
        self.total += other.total;
        self.lost += other.lost;
        self.dnssec += other.dnssec;
        self.nsec3 += other.nsec3;
        self.zero_iterations += other.zero_iterations;
        self.no_salt += other.no_salt;
        self.opt_out += other.opt_out;
        for (v, c) in other.iterations {
            *self.iterations.entry(v).or_default() += c;
        }
        for (v, c) in other.salt {
            *self.salt.entry(v).or_default() += c;
        }
    }

    /// Number of records folded in so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The finished statistics.
    pub fn finish(self) -> DomainStats {
        DomainStats {
            total: self.total,
            lost: self.lost,
            dnssec: self.dnssec,
            nsec3: self.nsec3,
            zero_iterations: self.zero_iterations,
            no_salt: self.no_salt,
            opt_out: self.opt_out,
            iterations_cdf: Cdf::from_counts(self.iterations),
            salt_cdf: Cdf::from_counts(self.salt),
        }
    }
}

impl DomainStats {
    /// Compute from records — a fold through [`DomainTally`].
    pub fn compute(records: &[DomainRecord]) -> Self {
        let mut tally = DomainTally::new();
        for rec in records {
            tally.add(rec);
        }
        tally.finish()
    }

    /// DNSSEC share of all measured domains (paper: 8.8 %). Lost
    /// records drop out of the denominator rather than masquerading as
    /// not-DNSSEC.
    pub fn dnssec_pct(&self) -> f64 {
        pct(self.dnssec, self.total - self.lost)
    }

    /// NSEC3 share of DNSSEC-enabled (paper: 58.9 %).
    pub fn nsec3_of_dnssec_pct(&self) -> f64 {
        pct(self.nsec3, self.dnssec)
    }

    /// The headline: share of NSEC3-enabled domains violating item 2
    /// (paper: 87.8 %).
    pub fn non_compliant_pct(&self) -> f64 {
        pct(self.nsec3 - self.zero_iterations, self.nsec3)
    }

    /// Item 2 compliance (paper: 12.2 %).
    pub fn zero_iteration_pct(&self) -> f64 {
        pct(self.zero_iterations, self.nsec3)
    }

    /// Item 3 compliance (paper: 8.6 %).
    pub fn no_salt_pct(&self) -> f64 {
        pct(self.no_salt, self.nsec3)
    }

    /// Opt-out share (paper: 6.4 %).
    pub fn opt_out_pct(&self) -> f64 {
        pct(self.opt_out, self.nsec3)
    }
}

/// One row of the Table 2 reproduction.
#[derive(Clone, Debug)]
pub struct OperatorRow {
    /// Operator registered domain.
    pub operator: String,
    /// NSEC3-enabled domains served exclusively.
    pub count: u64,
    /// Share of all NSEC3-enabled domains (%).
    pub share_pct: f64,
    /// Parameter sets `(iterations, salt_len)` with their share of this
    /// operator's domains (%), descending, covering ≥ 99.9 %.
    pub params: Vec<(u16, u8, f64)>,
}

/// Compute the Table 2 operator breakdown: top `n` operators by
/// exclusively-served NSEC3-enabled domains.
pub fn operator_table(records: &[DomainRecord], n: usize) -> Vec<OperatorRow> {
    let nsec3_total = records.iter().filter(|r| r.nsec3.is_some()).count() as u64;
    let mut by_op: HashMap<&str, Vec<(u16, u8)>> = HashMap::new();
    for rec in records {
        if let (Some(params), Some(op)) = (rec.nsec3, rec.operator.as_deref()) {
            by_op.entry(op).or_default().push(params);
        }
    }
    let mut rows: Vec<OperatorRow> = by_op
        .into_iter()
        .map(|(op, params)| {
            let count = params.len() as u64;
            let mut freq: HashMap<(u16, u8), u64> = HashMap::new();
            for p in &params {
                *freq.entry(*p).or_default() += 1;
            }
            let mut param_rows: Vec<(u16, u8, f64)> = freq
                .into_iter()
                .map(|((it, salt), c)| (it, salt, pct(c, count)))
                .collect();
            param_rows.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
            OperatorRow {
                operator: op.to_string(),
                count,
                share_pct: pct(count, nsec3_total),
                params: param_rows,
            }
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.count));
    rows.truncate(n);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(nsec3: Option<(u16, u8)>, opt_out: bool, op: Option<&str>) -> DomainRecord {
        DomainRecord {
            name: "x.com.".into(),
            dnssec: nsec3.is_some(),
            nsec3,
            opt_out,
            operator: op.map(String::from),
            probe_loss: false,
        }
    }

    #[test]
    fn stats_compute() {
        let records = vec![
            rec(None, false, None),
            rec(Some((0, 0)), false, None),
            rec(Some((1, 8)), true, None),
            rec(Some((5, 0)), false, None),
            DomainRecord {
                name: "n.com.".into(),
                dnssec: true,
                nsec3: None,
                opt_out: false,
                operator: None,
                probe_loss: false,
            },
        ];
        let s = DomainStats::compute(&records);
        assert_eq!(s.total, 5);
        assert_eq!(s.lost, 0);
        assert_eq!(s.dnssec, 4);
        assert_eq!(s.nsec3, 3);
        assert_eq!(s.zero_iterations, 1);
        assert_eq!(s.no_salt, 2);
        assert_eq!(s.opt_out, 1);
        assert!((s.non_compliant_pct() - 66.666).abs() < 0.01);
        assert!((s.dnssec_pct() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn operator_table_orders_and_shares() {
        let mut records = Vec::new();
        for _ in 0..60 {
            records.push(rec(Some((1, 8)), false, Some("big.example.")));
        }
        for _ in 0..30 {
            records.push(rec(Some((0, 0)), false, Some("small.example.")));
        }
        for _ in 0..10 {
            records.push(rec(Some((5, 4)), false, None)); // multi-operator
        }
        let table = operator_table(&records, 10);
        assert_eq!(table.len(), 2);
        assert_eq!(table[0].operator, "big.example.");
        assert_eq!(table[0].count, 60);
        assert!((table[0].share_pct - 60.0).abs() < 1e-9);
        assert_eq!(table[0].params[0], (1, 8, 100.0));
        assert_eq!(table[1].count, 30);
    }

    #[test]
    fn lost_records_never_skew_shares() {
        // 8 measured (4 DNSSEC) + 2 lost: the lost pair must neither
        // count as not-DNSSEC nor dilute the share.
        let mut records: Vec<DomainRecord> = (0..8)
            .map(|i| rec((i % 2 == 0).then_some((0, 0)), false, None))
            .collect();
        for _ in 0..2 {
            let mut r = rec(None, false, None);
            r.probe_loss = true;
            records.push(r);
        }
        let s = DomainStats::compute(&records);
        assert_eq!(s.total, 10);
        assert_eq!(s.lost, 2);
        assert_eq!(s.dnssec, 4);
        assert!((s.dnssec_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn sharded_tally_merge_matches_single_pass() {
        let records: Vec<DomainRecord> = (0..200)
            .map(|i| {
                let mut r = rec(
                    (i % 3 == 0).then_some(((i % 7) as u16, (i % 5) as u8)),
                    i % 11 == 0,
                    None,
                );
                r.probe_loss = i % 31 == 0;
                r
            })
            .collect();
        let whole = DomainStats::compute(&records);
        // Merge three uneven shard tallies.
        let mut merged = DomainTally::new();
        for chunk in [&records[..50], &records[50..51], &records[51..]] {
            let mut part = DomainTally::new();
            for r in chunk {
                part.add(r);
            }
            merged.merge(part);
        }
        assert_eq!(merged.total(), 200);
        let stats = merged.finish();
        assert_eq!(stats.total, whole.total);
        assert_eq!(stats.lost, whole.lost);
        assert_eq!(stats.dnssec, whole.dnssec);
        assert_eq!(stats.nsec3, whole.nsec3);
        assert_eq!(stats.zero_iterations, whole.zero_iterations);
        assert_eq!(stats.no_salt, whole.no_salt);
        assert_eq!(stats.opt_out, whole.opt_out);
        assert_eq!(stats.iterations_cdf.points(), whole.iterations_cdf.points());
        assert_eq!(stats.salt_cdf.points(), whole.salt_cdf.points());
    }

    #[test]
    fn figure1_cdf_values() {
        let records: Vec<DomainRecord> = (0..100)
            .map(|i| rec(Some((if i < 12 { 0 } else { 1 }, 8)), false, None))
            .collect();
        let s = DomainStats::compute(&records);
        assert!((s.iterations_cdf.fraction_at_most(0) - 0.12).abs() < 1e-9);
        assert!((s.zero_iteration_pct() - 12.0).abs() < 1e-9);
    }
}
