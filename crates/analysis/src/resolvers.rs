//! §5.2 aggregation: validator discovery counts, RFC 9276 item 6/8/7/10/12
//! adoption, threshold histograms, and the Figure 3 RCODE-share series.

use std::collections::BTreeMap;

use dns_scanner::prober::ResolverClassification;
use dns_wire::rrtype::Rcode;

use crate::stats::pct;

/// Which of the four Figure 3 panels a resolver belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Panel {
    /// Figure 3a.
    OpenV4,
    /// Figure 3b.
    OpenV6,
    /// Figure 3c.
    ClosedV4,
    /// Figure 3d.
    ClosedV6,
}

impl Panel {
    /// Panel title as in the paper.
    pub fn title(self) -> &'static str {
        match self {
            Panel::OpenV4 => "(a) Open, IPv4",
            Panel::OpenV6 => "(b) Open, IPv6",
            Panel::ClosedV4 => "(c) Closed, IPv4",
            Panel::ClosedV6 => "(d) Closed, IPv6",
        }
    }
}

/// One point of a Figure 3 series: response-kind shares at iteration
/// count N, in percent of validators.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RcodeShares {
    /// Additional-iteration count.
    pub n: u16,
    /// NXDOMAIN share (with or without AD — the paper's solid line).
    pub nxdomain: f64,
    /// NXDOMAIN with AD set (subset of `nxdomain`).
    pub ad_nxdomain: f64,
    /// SERVFAIL share.
    pub servfail: f64,
}

/// Aggregated §5.2 statistics over one set of classifications.
#[derive(Clone, Debug)]
pub struct ResolverStats {
    /// Resolvers that answered probes at all (classified minus
    /// unreachable).
    pub responsive: u64,
    /// Resolvers whose baseline probes never got an answer. They stay in
    /// the study denominator instead of silently vanishing.
    pub unreachable: u64,
    /// Resolvers with incomplete per-N coverage (probe loss): observed
    /// responses are tallied but no thresholds were derived for them.
    pub partial: u64,
    /// Validators found.
    pub validators: u64,
    /// Validators limiting iterations in any way (paper: 78.3 %).
    pub limiting: u64,
    /// Item 6 implementers (paper: 59.9 %).
    pub item6: u64,
    /// Item 8 implementers (paper: 18.4 %).
    pub item8: u64,
    /// Histogram of insecure-limit values (item 6 thresholds).
    pub insecure_limits: BTreeMap<u16, u64>,
    /// Histogram of first-SERVFAIL values (item 8 starts).
    pub servfail_starts: BTreeMap<u16, u64>,
    /// Limiting resolvers attaching EDE 27.
    pub ede27: u64,
    /// Item 7 violators (of those tested).
    pub item7_violations: u64,
    /// Item 7 tested.
    pub item7_tested: u64,
    /// Item 12 gaps observed.
    pub item12_gaps: u64,
    /// Flaky resolvers.
    pub flaky: u64,
    /// Validators whose responses never set RA (query-copier signature).
    pub ra_missing: u64,
}

impl ResolverStats {
    /// Aggregate a batch of classifications.
    pub fn compute(classifications: &[ResolverClassification]) -> Self {
        let unreachable = classifications.iter().filter(|c| c.unreachable).count() as u64;
        let partial = classifications.iter().filter(|c| c.partial).count() as u64;
        let responsive = classifications.len() as u64 - unreachable;
        let validators: Vec<&ResolverClassification> =
            classifications.iter().filter(|c| c.is_validator).collect();
        let mut stats = ResolverStats {
            responsive,
            unreachable,
            partial,
            validators: validators.len() as u64,
            limiting: 0,
            item6: 0,
            item8: 0,
            insecure_limits: BTreeMap::new(),
            servfail_starts: BTreeMap::new(),
            ede27: 0,
            item7_violations: 0,
            item7_tested: 0,
            item12_gaps: 0,
            flaky: 0,
            ra_missing: 0,
        };
        for c in &validators {
            // The paper's 78.3 % headline is exactly item 6 + item 8
            // (59.9 + 18.4): resolvers with a *clean* limit. Flaky
            // resolvers show limits too but the paper counts them out.
            if c.implements_item6() || c.implements_item8() {
                stats.limiting += 1;
            }
            if c.implements_item6() {
                stats.item6 += 1;
                if let Some(l) = c.insecure_limit {
                    *stats.insecure_limits.entry(l).or_default() += 1;
                }
            }
            if c.implements_item8() {
                stats.item8 += 1;
                if let Some(s) = c.servfail_start {
                    *stats.servfail_starts.entry(s).or_default() += 1;
                }
            }
            if c.ede27_on_limit {
                stats.ede27 += 1;
            }
            match c.item7_violation {
                Some(true) => {
                    stats.item7_tested += 1;
                    stats.item7_violations += 1;
                }
                Some(false) => stats.item7_tested += 1,
                None => {}
            }
            if c.item12_gap {
                stats.item12_gaps += 1;
            }
            if c.flaky {
                stats.flaky += 1;
            }
            if c.ra_missing {
                stats.ra_missing += 1;
            }
        }
        stats
    }

    /// Share of validators limiting iterations (paper: 78.3 %).
    pub fn limiting_pct(&self) -> f64 {
        pct(self.limiting, self.validators)
    }

    /// Item 6 share (paper: 59.9 %).
    pub fn item6_pct(&self) -> f64 {
        pct(self.item6, self.validators)
    }

    /// Item 8 share (paper: 18.4 %).
    pub fn item8_pct(&self) -> f64 {
        pct(self.item8, self.validators)
    }

    /// EDE 27 share among limiting validators (paper: < 18 % for open).
    pub fn ede27_of_limiting_pct(&self) -> f64 {
        pct(self.ede27, self.limiting)
    }

    /// Item 7 violation share among tested (paper: 0.2 %).
    pub fn item7_violation_pct(&self) -> f64 {
        pct(self.item7_violations, self.item7_tested)
    }

    /// Item 12 gap share of validators (paper: 4.3 %).
    pub fn item12_gap_pct(&self) -> f64 {
        pct(self.item12_gaps, self.validators)
    }
}

/// Build one Figure 3 panel's series from validator classifications: for
/// each probed N, the share of validators answering NXDOMAIN,
/// AD+NXDOMAIN, and SERVFAIL.
pub fn figure3_series(classifications: &[ResolverClassification]) -> Vec<RcodeShares> {
    let validators: Vec<&ResolverClassification> =
        classifications.iter().filter(|c| c.is_validator).collect();
    let mut per_n: BTreeMap<u16, (u64, u64, u64, u64)> = BTreeMap::new();
    for c in &validators {
        for (n, obs) in &c.responses {
            let e = per_n.entry(*n).or_default();
            e.3 += 1; // total
            match (obs.rcode, obs.ad) {
                (Rcode::NxDomain, true) => {
                    e.0 += 1;
                    e.1 += 1;
                }
                (Rcode::NxDomain, false) => {
                    e.0 += 1;
                }
                (Rcode::ServFail, _) => {
                    e.2 += 1;
                }
                _ => {}
            }
        }
    }
    per_n
        .into_iter()
        .map(|(n, (nx, adnx, sf, total))| RcodeShares {
            n,
            nxdomain: pct(nx, total),
            ad_nxdomain: pct(adnx, total),
            servfail: pct(sf, total),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_resolver::broken::ObservedResponse;

    fn mk(responses: Vec<(u16, Rcode, bool)>, validator: bool) -> ResolverClassification {
        let mut c = ResolverClassification::empty("10.0.0.1".parse().unwrap());
        c.is_validator = validator;
        c.responses = responses
            .into_iter()
            .map(|(n, rcode, ad)| {
                (
                    n,
                    ObservedResponse {
                        rcode,
                        ad,
                        ra: true,
                        ede: None,
                        ede_has_text: false,
                    },
                )
            })
            .collect();
        dns_scanner::prober::derive_limits(&mut c);
        c
    }

    #[test]
    fn stats_aggregate() {
        let classifications = vec![
            mk(
                vec![(1, Rcode::NxDomain, true), (151, Rcode::NxDomain, false)],
                true,
            ),
            mk(
                vec![(1, Rcode::NxDomain, true), (151, Rcode::ServFail, false)],
                true,
            ),
            mk(
                vec![(1, Rcode::NxDomain, true), (151, Rcode::NxDomain, true)],
                true,
            ),
            mk(vec![], false),
        ];
        let s = ResolverStats::compute(&classifications);
        assert_eq!(s.responsive, 4);
        assert_eq!(s.unreachable, 0);
        assert_eq!(s.partial, 0);
        assert_eq!(s.validators, 3);
        assert_eq!(s.item6, 1);
        assert_eq!(s.item8, 1);
        assert_eq!(s.limiting, 2);
        assert!((s.limiting_pct() - 66.666).abs() < 0.01);
        assert_eq!(s.insecure_limits.get(&1), Some(&1));
        assert_eq!(s.servfail_starts.get(&151), Some(&1));
    }

    #[test]
    fn unreachable_and_partial_stay_in_the_denominator() {
        let mut dead = ResolverClassification::empty("10.0.0.9".parse().unwrap());
        dead.unreachable = true;
        let mut part = mk(vec![(1, Rcode::NxDomain, true)], true);
        part.partial = true;
        let fine = mk(
            vec![(1, Rcode::NxDomain, true), (151, Rcode::NxDomain, false)],
            true,
        );
        let s = ResolverStats::compute(&[dead, part, fine]);
        assert_eq!(s.responsive, 2);
        assert_eq!(s.unreachable, 1);
        assert_eq!(s.partial, 1);
        assert_eq!(s.validators, 2);
    }

    #[test]
    fn figure3_shares() {
        let classifications = vec![
            mk(
                vec![(100, Rcode::NxDomain, true), (200, Rcode::NxDomain, false)],
                true,
            ),
            mk(
                vec![(100, Rcode::NxDomain, true), (200, Rcode::ServFail, false)],
                true,
            ),
        ];
        let series = figure3_series(&classifications);
        assert_eq!(series.len(), 2);
        let at100 = series.iter().find(|p| p.n == 100).unwrap();
        assert_eq!(at100.nxdomain, 100.0);
        assert_eq!(at100.ad_nxdomain, 100.0);
        assert_eq!(at100.servfail, 0.0);
        let at200 = series.iter().find(|p| p.n == 200).unwrap();
        assert_eq!(at200.nxdomain, 50.0);
        assert_eq!(at200.ad_nxdomain, 0.0);
        assert_eq!(at200.servfail, 50.0);
    }

    #[test]
    fn non_validators_excluded_from_series() {
        let classifications = vec![mk(vec![(100, Rcode::NxDomain, false)], false)];
        assert!(figure3_series(&classifications).is_empty());
    }
}
