//! Small statistics toolkit: empirical CDFs and percentage helpers.

/// An empirical cumulative distribution over `u32` sample values.
///
/// Stored run-length — distinct values with cumulative counts — so the
/// footprint is O(distinct values), not O(samples). A streaming census
/// over millions of domains feeds the handful of distinct NSEC3
/// parameter values through [`Cdf::from_counts`] without ever holding
/// per-domain samples; [`Cdf::from_samples`] collapses to the same
/// representation, so both construction paths are indistinguishable
/// through the query API.
#[derive(Clone)]
pub struct Cdf {
    /// Distinct sample values, ascending.
    values: Vec<u32>,
    /// `cumulative[i]` = number of samples ≤ `values[i]`.
    cumulative: Vec<u64>,
}

impl std::fmt::Debug for Cdf {
    /// Renders the expanded sample list, exactly as the pre-run-length
    /// representation derived it — golden outputs that print a
    /// [`Cdf`] (the pinned driver reports do) must not move with the
    /// internal storage.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        struct Expanded<'a>(&'a Cdf);
        impl std::fmt::Debug for Expanded<'_> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                let mut list = f.debug_list();
                let mut prev = 0u64;
                for (&v, &c) in self.0.values.iter().zip(&self.0.cumulative) {
                    for _ in prev..c {
                        list.entry(&v);
                    }
                    prev = c;
                }
                list.finish()
            }
        }
        f.debug_struct("Cdf")
            .field("sorted", &Expanded(self))
            .finish()
    }
}

impl Cdf {
    /// Build from any sample iterator.
    pub fn from_samples<I: IntoIterator<Item = u32>>(samples: I) -> Self {
        let mut counts: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        for s in samples {
            *counts.entry(s).or_default() += 1;
        }
        Cdf::from_counts(counts)
    }

    /// Build from `(value, count)` pairs in ascending value order with no
    /// repeated values — the shape a [`std::collections::BTreeMap`]
    /// iterates in. Zero-count pairs are skipped.
    pub fn from_counts<I: IntoIterator<Item = (u32, u64)>>(counts: I) -> Self {
        let mut values = Vec::new();
        let mut cumulative = Vec::new();
        let mut acc = 0u64;
        for (v, c) in counts {
            if c == 0 {
                continue;
            }
            debug_assert!(values.last().is_none_or(|&last| last < v), "ascending");
            acc += c;
            values.push(v);
            cumulative.push(acc);
        }
        Cdf { values, cumulative }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.cumulative.last().copied().unwrap_or(0) as usize
    }

    /// True when no samples were supplied.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of samples ≤ `x`.
    fn count_at_most(&self, x: u32) -> u64 {
        match self.values.partition_point(|&v| v <= x) {
            0 => 0,
            i => self.cumulative[i - 1],
        }
    }

    /// Fraction of samples ≤ `x`, in `[0, 1]`.
    pub fn fraction_at_most(&self, x: u32) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.count_at_most(x) as f64 / self.len() as f64
    }

    /// Number of samples strictly greater than `x`.
    pub fn count_over(&self, x: u32) -> usize {
        (self.len() as u64 - self.count_at_most(x)) as usize
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), nearest-rank.
    pub fn quantile(&self, q: f64) -> Option<u32> {
        if self.is_empty() {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0)) * (self.len() - 1) as f64).round() as u64;
        // The value whose cumulative count first covers the rank.
        let i = self.cumulative.partition_point(|&c| c <= rank);
        Some(self.values[i])
    }

    /// Largest sample.
    pub fn max(&self) -> Option<u32> {
        self.values.last().copied()
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<u32> {
        self.values.first().copied()
    }

    /// `(x, pct ≤ x)` pairs at every distinct sample value — the series a
    /// CDF plot draws.
    pub fn points(&self) -> Vec<(u32, f64)> {
        let n = self.len() as f64;
        self.values
            .iter()
            .zip(&self.cumulative)
            .map(|(&v, &c)| (v, c as f64 / n * 100.0))
            .collect()
    }
}

/// One-sample Kolmogorov–Smirnov statistic against the uniform
/// distribution on `[0, max]`: the maximum absolute gap between the
/// empirical CDF and the uniform CDF. Figure 2's claim that compliance
/// "increases uniformly, indicating that compliance … is uniformly
/// distributed among the ranks" is this statistic being small.
pub fn ks_uniform(cdf: &Cdf, max: u32) -> f64 {
    if cdf.is_empty() || max == 0 {
        return 0.0;
    }
    let mut worst: f64 = 0.0;
    for (x, pct) in cdf.points() {
        let empirical = pct / 100.0;
        let uniform = (x.min(max) as f64) / max as f64;
        worst = worst.max((empirical - uniform).abs());
        // Also check just before the step (the lower envelope).
        let n = cdf.len() as f64;
        let before = empirical - 1.0 / n;
        worst = worst.max((uniform - before).abs());
    }
    worst
}

/// Percentage of `part` in `whole` (0 when `whole` is 0).
pub fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64 * 100.0
    }
}

/// Format a percentage the way the paper does (one decimal).
pub fn fmt_pct(p: f64) -> String {
    format!("{p:.1} %")
}

/// Human-readable large count (e.g. `15.5 M`, `105.2 K`).
pub fn fmt_count(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.1} M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.1} K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_basics() {
        let cdf = Cdf::from_samples([1, 1, 2, 5, 10]);
        assert_eq!(cdf.len(), 5);
        assert!((cdf.fraction_at_most(1) - 0.4).abs() < 1e-9);
        assert!((cdf.fraction_at_most(5) - 0.8).abs() < 1e-9);
        assert!((cdf.fraction_at_most(100) - 1.0).abs() < 1e-9);
        assert_eq!(cdf.count_over(5), 1);
        assert_eq!(cdf.max(), Some(10));
        assert_eq!(cdf.min(), Some(1));
    }

    #[test]
    fn cdf_quantiles() {
        let cdf = Cdf::from_samples(0..=100);
        assert_eq!(cdf.quantile(0.0), Some(0));
        assert_eq!(cdf.quantile(0.5), Some(50));
        assert_eq!(cdf.quantile(1.0), Some(100));
        assert_eq!(Cdf::from_samples([]).quantile(0.5), None);
    }

    #[test]
    fn cdf_points_deduplicate() {
        let cdf = Cdf::from_samples([0, 0, 0, 8, 8, 40]);
        let pts = cdf.points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].0, 0);
        assert!((pts[0].1 - 50.0).abs() < 1e-9);
        assert!((pts[2].1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_cdf_is_safe() {
        let cdf = Cdf::from_samples([]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_most(5), 0.0);
        assert_eq!(cdf.count_over(5), 0);
        assert!(cdf.points().is_empty());
    }

    #[test]
    fn ks_statistic_detects_uniformity_and_skew() {
        // Uniform samples: small statistic.
        let uniform = Cdf::from_samples(0..1000);
        assert!(
            ks_uniform(&uniform, 999) < 0.01,
            "{}",
            ks_uniform(&uniform, 999)
        );
        // Heavily skewed samples: large statistic.
        let skewed = Cdf::from_samples((0..1000).map(|i| i / 10));
        assert!(ks_uniform(&skewed, 999) > 0.5);
        // Degenerate inputs are safe.
        assert_eq!(ks_uniform(&Cdf::from_samples([]), 10), 0.0);
        assert_eq!(ks_uniform(&uniform, 0), 0.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_pct(87.84), "87.8 %");
        assert_eq!(fmt_count(15_500_000), "15.5 M");
        assert_eq!(fmt_count(105_200), "105.2 K");
        assert_eq!(fmt_count(447), "447");
        assert_eq!(pct(122, 1000), 12.2);
        assert_eq!(pct(1, 0), 0.0);
    }
}
