//! RFC 9276 compliance analysis: the paper's Table 1 items as checkable
//! predicates, §5.1/§5.2 aggregation, and text/CSV renderers for every
//! table and figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domains;
pub mod render;
pub mod resolvers;
pub mod rfc9276;
pub mod stats;
pub mod svg;

pub use domains::{operator_table, DomainRecord, DomainStats, DomainTally, OperatorRow};
pub use render::{
    cdf_csv, compare_line, figure3_csv, render_cdf, render_figure3_panel, render_table2,
};
pub use resolvers::{figure3_series, Panel, RcodeShares, ResolverStats};
pub use rfc9276::{DomainCompliance, Item, Keyword, ITEMS};
pub use stats::{fmt_count, fmt_pct, ks_uniform, pct, Cdf};
pub use svg::{cdf_svg, figure3_svg};
