//! Text renderers: ASCII CDF plots, the Figure 3 panels, Table 2, and CSV
//! emitters — what the bench harnesses print so a reader can compare
//! against the paper's figures directly.

use crate::domains::OperatorRow;
use crate::resolvers::RcodeShares;
use crate::stats::Cdf;

/// Render an ASCII CDF plot: y = % of population, x = sample value
/// (clipped to `x_max`), like Figure 1's axes.
pub fn render_cdf(title: &str, cdf: &Cdf, x_max: u32) -> String {
    const WIDTH: usize = 60;
    const HEIGHT: usize = 16;
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if cdf.is_empty() {
        out.push_str("  (no samples)\n");
        return out;
    }
    let mut grid = vec![vec![' '; WIDTH]; HEIGHT];
    for (col, x) in (0..WIDTH).map(|c| {
        (
            c,
            (c as f64 / (WIDTH - 1) as f64 * x_max as f64).round() as u32,
        )
    }) {
        let frac = cdf.fraction_at_most(x);
        let row = ((1.0 - frac) * (HEIGHT - 1) as f64).round() as usize;
        grid[row.min(HEIGHT - 1)][col] = '*';
    }
    for (i, row) in grid.iter().enumerate() {
        let pct_label = 100.0 - (i as f64 / (HEIGHT - 1) as f64 * 100.0);
        out.push_str(&format!("{pct_label:5.0} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("      +{}\n", "-".repeat(WIDTH)));
    out.push_str(&format!("       0{:>width$}\n", x_max, width = WIDTH - 1));
    out
}

/// Render one Figure 3 panel: three share curves vs iteration count.
pub fn render_figure3_panel(title: &str, series: &[RcodeShares]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str("      N  NXDOMAIN  AD+NXDOMAIN  SERVFAIL\n");
    for p in series {
        out.push_str(&format!(
            "  {:>5}  {:>7.1}%  {:>10.1}%  {:>7.1}%\n",
            p.n, p.nxdomain, p.ad_nxdomain, p.servfail
        ));
    }
    out
}

/// Figure 3 panel as CSV (`n,nxdomain,ad_nxdomain,servfail`).
pub fn figure3_csv(series: &[RcodeShares]) -> String {
    let mut out = String::from("n,nxdomain_pct,ad_nxdomain_pct,servfail_pct\n");
    for p in series {
        out.push_str(&format!(
            "{},{:.3},{:.3},{:.3}\n",
            p.n, p.nxdomain, p.ad_nxdomain, p.servfail
        ));
    }
    out
}

/// Render the Table 2 reproduction.
pub fn render_table2(rows: &[OperatorRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "Auth. name server operator          #NSEC3 domains   share    iterations/salt-bytes\n",
    );
    out.push_str(&"-".repeat(92));
    out.push('\n');
    for row in rows {
        let params: Vec<String> = row
            .params
            .iter()
            .filter(|(_, _, share)| *share >= 0.05)
            .map(|(it, salt, _)| format!("{it}/{salt}"))
            .collect();
        out.push_str(&format!(
            "{:<36}{:>15}  {:>5.1} %   {}\n",
            row.operator,
            row.count,
            row.share_pct,
            params.join(", ")
        ));
    }
    out
}

/// CDF points as CSV (`x,pct_at_most`).
pub fn cdf_csv(cdf: &Cdf) -> String {
    let mut out = String::from("x,pct_at_most\n");
    for (x, p) in cdf.points() {
        out.push_str(&format!("{x},{p:.3}\n"));
    }
    out
}

/// A two-column paper-vs-measured comparison line for EXPERIMENTS.md-style
/// reports.
pub fn compare_line(metric: &str, paper: &str, measured: &str) -> String {
    format!("  {metric:<52} paper: {paper:>10}   measured: {measured:>10}\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Cdf;

    #[test]
    fn cdf_plot_contains_axes_and_stars() {
        let cdf = Cdf::from_samples([0, 0, 1, 5, 10, 50]);
        let plot = render_cdf("iterations", &cdf, 50);
        assert!(plot.starts_with("iterations\n"));
        assert!(plot.contains('*'));
        assert!(plot.contains("100 |"));
        assert!(plot.contains("    0 |"));
    }

    #[test]
    fn empty_cdf_plot() {
        let plot = render_cdf("t", &Cdf::from_samples([]), 10);
        assert!(plot.contains("no samples"));
    }

    #[test]
    fn figure3_text_and_csv() {
        let series = vec![
            RcodeShares {
                n: 1,
                nxdomain: 99.0,
                ad_nxdomain: 95.0,
                servfail: 1.0,
            },
            RcodeShares {
                n: 151,
                nxdomain: 60.0,
                ad_nxdomain: 10.0,
                servfail: 39.0,
            },
        ];
        let text = render_figure3_panel("(a) Open, IPv4", &series);
        assert!(text.contains("(a) Open, IPv4"));
        assert!(text.contains("151"));
        let csv = figure3_csv(&series);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().nth(2).unwrap().starts_with("151,60.000"));
    }

    #[test]
    fn table2_render() {
        let rows = vec![OperatorRow {
            operator: "squarespacedns.example.".into(),
            count: 6_130_794,
            share_pct: 39.4,
            params: vec![(1, 8, 100.0)],
        }];
        let table = render_table2(&rows);
        assert!(table.contains("squarespacedns.example."));
        assert!(table.contains("39.4"));
        assert!(table.contains("1/8"));
    }

    #[test]
    fn cdf_csv_lists_points() {
        let csv = cdf_csv(&Cdf::from_samples([0, 0, 8]));
        assert!(csv.contains("0,66.667"));
        assert!(csv.contains("8,100.000"));
    }
}
