#!/usr/bin/env bash
# Canonical offline verification for this repository. Run before every
# push; CI runs exactly this script.
#
# The workspace is 100 % self-contained: no network, no registry, no
# external crates. --offline makes any accidental dependency regression
# fail loudly right here.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: build (release, offline)"
cargo build --release --offline --workspace

echo "== tier 1: tests (offline)"
cargo test -q --offline --workspace

echo "== determinism across thread counts (HEROES_THREADS=1 vs 4)"
HEROES_THREADS=1 cargo test -q --offline --test determinism
HEROES_THREADS=4 cargo test -q --offline --test determinism

echo "== fault matrix: lossy profile smoke (HEROES_FAULTS=lossy)"
HEROES_FAULTS=lossy HEROES_THREADS=2 cargo test -q --offline --test determinism --test fault_tolerance
cargo test -q --offline -p nsec3-core --test fault_props

if command -v rustfmt >/dev/null 2>&1; then
    echo "== rustfmt --check"
    cargo fmt --all -- --check
else
    echo "== rustfmt not installed; skipping"
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "== clippy (-D warnings)"
    cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "== clippy not installed; skipping"
fi

echo "== bench smoke: engine parity gates (reduced samples)"
# bench_nsec3_hash refuses to start unless the single-block engine agrees
# with the streaming reference (digests and compression counts) across the
# salt-length boundary, and the interleaved batch lanes agree with the
# scalar engine over ragged batch sizes, the 35→36-byte salt boundary,
# and every measured iteration count; bench_zone_signing asserts the
# signed zone renders
# byte-identically at threads=1/2/4; bench_wire refuses to start unless
# MessageView's accept/reject decisions (and materialized contents) match
# Message::decode over a corpus of clean, truncated, and bit-flipped
# packets. Reduced samples keep this a smoke test; the JSON reports land
# in a scratch dir, not the repo.
SMOKE_DIR="$(mktemp -d)"
ROOT="$(pwd)"
(
    cd "$SMOKE_DIR" \
        && MICROBENCH_SAMPLES=5 "$ROOT/target/release/bench_nsec3_hash" >/dev/null \
        && MICROBENCH_SAMPLES=3 "$ROOT/target/release/bench_zone_signing" >/dev/null \
        && MICROBENCH_SAMPLES=3 "$ROOT/target/release/bench_wire" >/dev/null
)
rm -rf "$SMOKE_DIR"

echo "== adversarial-workload gate (reduced sample)"
# bench_adversarial asserts the robustness claims internally and exits
# nonzero if any regresses: every attack family must cost an undefended
# resolver >= 10x the RFC 9276 baseline per query, the layered defense
# (iteration clamp + work budget) must hold every family's total bill to
# a small constant factor of baseline, and the hash-heavy families must
# show real undefended/defended compressions-per-query savings above the
# floor. One zone per family and four queries each keep this a smoke
# test; the JSON lands in a scratch dir, not the repo.
SMOKE_DIR="$(mktemp -d)"
(
    cd "$SMOKE_DIR" \
        && HEROES_ADV_ZONES=1 HEROES_ADV_QUERIES=4 \
            "$ROOT/target/release/bench_adversarial" >/dev/null
)
rm -rf "$SMOKE_DIR"

echo "== iterative-recursion gate (reduced sample)"
# bench_recursion stands the signed root→TLD→leaf hierarchy up and
# exits nonzero unless the delegation cache actually pays: warm walks
# must issue strictly fewer upstream queries than cold ones (with real
# cache hits recorded), the cached fleet must beat the cacheless
# upstream bill, and deep chains must amplify the per-walk message
# count over shallow ones. Eight TLDs with two leaves each keep it a
# smoke test; the JSON lands in a scratch dir, not the repo.
SMOKE_DIR="$(mktemp -d)"
(
    cd "$SMOKE_DIR" \
        && HEROES_REC_TLDS=8 HEROES_REC_LEAVES=2 \
            "$ROOT/target/release/bench_recursion" >/dev/null
)
rm -rf "$SMOKE_DIR"

echo "== streaming-census memory gate (100 K domains, fixed RSS ceiling)"
# The streaming census must hold memory flat regardless of population:
# shards pull domains from the O(1) generator one batch at a time and
# fold records straight into tallies. A 100 K-domain run peaks around
# 11 MB; the 128 MB ceiling is an order of magnitude of headroom, while
# any regression to materialising the population (specs, labs, or
# records) blows straight through it. Gated at 1 and 4 threads.
HEROES_THREADS=1 "$ROOT/target/release/bench_census_scale" --smoke --rss-ceiling-mb 128
HEROES_THREADS=4 "$ROOT/target/release/bench_census_scale" --smoke --rss-ceiling-mb 128

echo "== serving-driver gate (reduced sample, collapse + RSS)"
# bench_serving --smoke pushes an NXDOMAIN-heavy Zipf workload through a
# small resolver fleet twice — aggressive NSEC3 synthesis on and off —
# and exits nonzero unless RFC 8198 caching collapses upstream NXDOMAIN
# traffic by at least 2x and peak RSS stays under the ceiling. The
# reduced sample (1 600 queries) keeps it a smoke test; the full
# benchmark (1 M queries, latency and flat-memory gates) writes the
# committed BENCH_serving.json. Gated at 1 and 4 threads so the fleet
# merge path is exercised both ways.
"$ROOT/target/release/bench_serving" --smoke --rss-ceiling-mb 128 --threads 1
"$ROOT/target/release/bench_serving" --smoke --rss-ceiling-mb 128 --threads 4

echo "== external-dependency guard"
if grep -rn --include=Cargo.toml -E '^\s*((rand|proptest|criterion|rayon|crossbeam|threadpool)\b|\[[a-z-]+\.(rand|proptest|criterion|rayon|crossbeam|threadpool)\])' . ; then
    echo "error: external dependency crept back into a manifest" >&2
    exit 1
fi

echo "ci.sh: all checks passed"
