//! `heroes` — the umbrella crate of the *Zeros Are Heroes* (IMC 2024)
//! reproduction.
//!
//! This crate re-exports the whole workspace so examples, integration
//! tests, and downstream users can depend on one crate. The substance
//! lives in the member crates:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`wire`] | DNS wire format: names, records, messages, EDNS/EDE |
//! | [`crypto`] | SHA-1/SHA-256/HMAC/SimSig/key tags, from scratch |
//! | [`zone`] | zones, NSEC/NSEC3 chains, signing, denial proofs, zone files |
//! | [`net`] | the deterministic simulated Internet |
//! | [`auth`] | the authoritative server engine (incl. AXFR) |
//! | [`resolver`] | validating recursion, RFC 9276 policies, vendor profiles |
//! | [`scanner`] | census + prober + Atlas probes + zone walking |
//! | [`populations`] | calibrated synthetic populations |
//! | [`stats`] | compliance analysis, CDFs, figure renderers |
//! | [`core`] | the testbed and end-to-end experiment drivers |
//! | [`par`] | deterministic fixed-shard parallelism for the drivers |
//!
//! # One-screen tour
//!
//! ```
//! use heroes::prelude::*;
//!
//! // Sign a zone the RFC 9276 way and hash a name the RFC 5155 way.
//! let apex = name("demo.example.");
//! let mut z = Zone::new(apex.clone());
//! z.add(Record::new(apex.clone(), 300, RData::A("192.0.2.1".parse().unwrap()))).unwrap();
//! let signed = sign_zone(&z, &SignerConfig::standard(&apex, 1_710_000_000)).unwrap();
//! assert!(signed.nsec3_params().unwrap().rfc9276_compliant());
//!
//! let h = nsec3_hash(&name("www.demo.example."), &Nsec3Params::rfc9276());
//! assert_eq!(h.compressions, 1); // zeros are heroes
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use analysis as stats;
pub use dns_auth as auth;
pub use dns_crypto as crypto;
pub use dns_resolver as resolver;
pub use dns_scanner as scanner;
pub use dns_wire as wire;
pub use dns_zone as zone;
pub use netsim as net;
pub use nsec3_core as core;
pub use popgen as populations;
pub use sim_par as par;

/// The names most examples want in scope.
pub mod prelude {
    pub use analysis::{DomainStats, ResolverStats};
    pub use dns_resolver::{Resolver, ResolverConfig, Rfc9276Policy, VendorProfile};
    pub use dns_wire::name::{name, Name};
    pub use dns_wire::rdata::RData;
    pub use dns_wire::record::Record;
    pub use dns_wire::rrtype::{Rcode, RrType};
    pub use dns_zone::nsec3hash::{nsec3_hash, Nsec3Params};
    pub use dns_zone::signer::{sign_zone, Denial, SignerConfig};
    pub use dns_zone::Zone;
    pub use nsec3_core::testbed::build_testbed;
    pub use popgen::Scale;
}
